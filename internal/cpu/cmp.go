// Package cpu implements the closed-loop CMP substrate of the evaluation:
// out-of-order-style cores with a bounded miss window (4 MSHRs per core,
// paper §V-A), a statically-interleaved non-uniform L2 cache (S-NUCA), and
// request/reply memory transactions riding the optical network. The point
// of the model — and the reason the paper builds one — is *self-throttling*:
// a core with all MSHRs outstanding stops injecting, so network behaviour
// feeds back into offered load and ultimately into IPC.
//
// The core model is deliberately compact: each cycle a non-stalled core
// commits IssueWidth instructions and generates an L2 access with the
// benchmark's miss intensity; an access allocates an MSHR and launches a
// request to its S-NUCA home bank; the reply releases the MSHR after the
// bank's access latency. A core stalls only when all MSHRs are busy —
// out-of-order tolerance of outstanding misses, the same abstraction the
// paper's "customized timing-model interface" uses.
package cpu

import (
	"fmt"

	"photon/internal/core"
	"photon/internal/router"
	"photon/internal/sim"
)

// Params configures the CMP model.
type Params struct {
	// MSHRs bounds outstanding misses per core (4 in the paper).
	MSHRs int
	// IssueWidth is instructions committed per un-stalled cycle.
	IssueWidth int
	// MissPer1kInstr is the L2-bound access intensity (misses per 1000
	// committed instructions) — the knob each benchmark sets.
	MissPer1kInstr float64
	// BankLatency is the L2 bank access time in cycles.
	BankLatency int
	// BanksPerNode is the number of L2 banks per node (2 in the paper:
	// 128 banks on 64 nodes).
	BanksPerNode int
	// Burstiness concentrates misses into memory phases: during a phase
	// the miss intensity is Burstiness x MissPer1kInstr and between
	// phases it is zero, with the duty cycle chosen to preserve the mean.
	// 1 = smooth execution. Bursty phases are what saturate the MSHRs and
	// expose network latency in IPC — without them the 4-entry miss
	// window hides the network entirely.
	Burstiness float64
	// MeanBurst is the mean memory-phase length in cycles.
	MeanBurst float64
	// PhaseSync is the fraction of cores following a single global phase
	// schedule (barrier-style synchronisation).
	PhaseSync float64
	// Seed drives address generation.
	Seed uint64
}

// DefaultParams returns the paper's CMP configuration with a mid-range
// miss intensity.
func DefaultParams() Params {
	return Params{
		MSHRs:          4,
		IssueWidth:     2,
		MissPer1kInstr: 10,
		BankLatency:    6,
		BanksPerNode:   2,
		Burstiness:     1,
		MeanBurst:      200,
		Seed:           1,
	}
}

// Validate reports the first bad parameter.
func (p Params) Validate() error {
	if p.MSHRs < 1 {
		return fmt.Errorf("cpu: MSHRs must be >= 1, got %d", p.MSHRs)
	}
	if p.IssueWidth < 1 {
		return fmt.Errorf("cpu: issue width must be >= 1, got %d", p.IssueWidth)
	}
	if p.MissPer1kInstr < 0 {
		return fmt.Errorf("cpu: miss intensity must be >= 0, got %g", p.MissPer1kInstr)
	}
	if p.BankLatency < 1 {
		return fmt.Errorf("cpu: bank latency must be >= 1, got %d", p.BankLatency)
	}
	if p.BanksPerNode < 1 {
		return fmt.Errorf("cpu: banks per node must be >= 1, got %d", p.BanksPerNode)
	}
	if p.Burstiness < 1 {
		return fmt.Errorf("cpu: burstiness must be >= 1, got %g", p.Burstiness)
	}
	if p.Burstiness > 1 && p.MeanBurst < 1 {
		return fmt.Errorf("cpu: bursty execution needs MeanBurst >= 1, got %g", p.MeanBurst)
	}
	if p.PhaseSync < 0 || p.PhaseSync > 1 {
		return fmt.Errorf("cpu: phase sync must be in [0,1], got %g", p.PhaseSync)
	}
	return nil
}

// CMP couples a set of cores to a network.
type CMP struct {
	params Params
	net    *core.Network

	cores []coreState
	// bank replies in flight (bank access latency).
	bankPipe *sim.DelayLine[pendingReply]

	globalPhase phaseState
	duty        float64
	meanOff     float64

	committed  int64
	stallCyc   int64
	misses     int64
	replies    int64
	roundTrips *welford
}

type coreState struct {
	rng         *sim.RNG
	outstanding int
	// missCredit accumulates fractional misses between instructions.
	missCredit float64
	// synced cores follow the CMP's global phase; the rest run their own.
	synced bool
	phase  phaseState
	// seq numbers this core's transactions (mod 128) so replies can be
	// matched to their issue time for round-trip statistics.
	seq uint64
	// issuedAt[seq] records when each in-flight transaction was issued.
	issuedAt [128]int64
}

// phaseState is a two-state (memory/compute) phase process.
type phaseState struct {
	rng    *sim.RNG
	on     bool
	remain int64
}

func newPhase(rng *sim.RNG, duty, meanOn, meanOff float64) phaseState {
	p := phaseState{rng: rng, on: rng.Bernoulli(duty)}
	p.arm(meanOn, meanOff)
	return p
}

func (p *phaseState) arm(meanOn, meanOff float64) {
	if p.on {
		p.remain = 1 + p.rng.Geometric(1/maxf(meanOn, 1))
	} else {
		p.remain = 1 + p.rng.Geometric(1/maxf(meanOff, 1))
	}
}

func (p *phaseState) advance(meanOn, meanOff float64) {
	if p.remain <= 0 {
		p.on = !p.on
		p.arm(meanOn, meanOff)
	}
	p.remain--
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

type pendingReply struct {
	bankNode int
	bankCore int // core slot at the bank node used to inject the reply
	dstNode  int
	tag      uint64
}

type welford struct {
	n    int64
	mean float64
}

func (w *welford) add(x float64) {
	w.n++
	w.mean += (x - w.mean) / float64(w.n)
}

// New builds a CMP on top of net. It installs itself as the network's
// OnDeliver hook; the caller must not overwrite it.
func New(params Params, net *core.Network) (*CMP, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	cfg := net.Config()
	root := sim.NewRNG(params.Seed)
	m := &CMP{
		params:     params,
		net:        net,
		cores:      make([]coreState, cfg.Cores()),
		bankPipe:   sim.NewDelayLine[pendingReply](params.BankLatency + 2),
		roundTrips: &welford{},
	}
	m.duty = 1 / params.Burstiness
	m.meanOff = params.MeanBurst * (1 - m.duty) / maxf(m.duty, 1e-9)
	m.globalPhase = newPhase(root.Fork(0xFA5E), m.duty, params.MeanBurst, m.meanOff)
	for i := range m.cores {
		rng := root.Fork(uint64(i))
		m.cores[i] = coreState{
			rng:    rng,
			synced: rng.Bernoulli(params.PhaseSync),
			phase:  newPhase(rng.Fork(1), m.duty, params.MeanBurst, m.meanOff),
		}
	}
	net.OnDeliver = m.onDeliver
	return m, nil
}

// txnTag packs (requesting core, transaction kind, sequence) into a packet
// tag. Bits 0..31: requesting core; bit 32: reply flag; bits 33..39: the
// core-local transaction sequence. The network reserves bits 40+ for queue
// routing.
func txnTag(core int, reply bool, seq uint64) uint64 {
	t := uint64(core) | (seq&0x7F)<<33
	if reply {
		t |= 1 << 32
	}
	return t
}

func tagCore(tag uint64) int   { return int(tag & 0xFFFFFFFF) }
func tagReply(tag uint64) bool { return tag&(1<<32) != 0 }
func tagSeq(tag uint64) uint64 { return (tag >> 33) & 0x7F }

// onDeliver handles packet arrivals: requests reach their bank and start
// the bank access; replies release the requesting core's MSHR.
func (m *CMP) onDeliver(p *router.Packet) {
	switch p.Class {
	case router.ClassRequest:
		// The bank serves the access, then a reply is injected from the
		// bank's node back to the requesting core's node.
		reqCore := tagCore(p.Tag)
		cfg := m.net.Config()
		reply := pendingReply{
			bankNode: p.Dst,
			bankCore: p.Dst*cfg.CoresPerNode + int(p.ID)%cfg.CoresPerNode,
			dstNode:  reqCore / cfg.CoresPerNode,
			tag:      txnTag(reqCore, true, tagSeq(p.Tag)),
		}
		m.bankPipe.Schedule(m.net.Now()+int64(m.params.BankLatency), reply)
	case router.ClassReply:
		reqCore := tagCore(p.Tag)
		if !tagReply(p.Tag) {
			panic("cpu: reply packet without reply tag")
		}
		st := &m.cores[reqCore]
		if st.outstanding <= 0 {
			panic(fmt.Sprintf("cpu: reply for core %d with no outstanding miss", reqCore))
		}
		st.outstanding--
		m.replies++
		m.roundTrips.add(float64(p.DeliveredAt - st.issuedAt[tagSeq(p.Tag)]))
	}
}

// Step advances the CMP one cycle: banks emit due replies, then cores
// execute. Call immediately before net.Step().
func (m *CMP) Step() {
	now := m.net.Now()
	for _, r := range m.bankPipe.PopDue(now) {
		m.net.Inject(r.bankCore, r.dstNode, router.ClassReply, r.tag)
	}

	cfg := m.net.Config()
	m.globalPhase.advance(m.params.MeanBurst, m.meanOff)
	for c := range m.cores {
		st := &m.cores[c]
		if st.outstanding >= m.params.MSHRs {
			m.stallCyc++
			continue // self-throttled: full miss window
		}
		missPerInstr := 0.0
		if m.params.Burstiness <= 1 {
			// Smooth execution: constant miss intensity.
			missPerInstr = m.params.MissPer1kInstr / 1000
		} else {
			inMemPhase := m.globalPhase.on
			if !st.synced {
				st.phase.advance(m.params.MeanBurst, m.meanOff)
				inMemPhase = st.phase.on
			}
			if inMemPhase {
				missPerInstr = m.params.Burstiness * m.params.MissPer1kInstr / 1000
			}
		}
		m.committed += int64(m.params.IssueWidth)
		st.missCredit += float64(m.params.IssueWidth) * missPerInstr
		for st.missCredit >= 1 && st.outstanding < m.params.MSHRs {
			st.missCredit--
			st.outstanding++
			m.misses++
			bank := st.rng.Intn(cfg.Nodes * m.params.BanksPerNode)
			bankNode := bank / m.params.BanksPerNode
			seq := st.seq % 128
			st.seq++
			st.issuedAt[seq] = now
			m.net.Inject(c, bankNode, router.ClassRequest, txnTag(c, false, seq))
		}
	}
}

// Run advances the coupled CMP+network for the given cycles and returns
// the outcome.
func (m *CMP) Run(cycles int64) Outcome {
	for i := int64(0); i < cycles; i++ {
		m.Step()
		m.net.Step()
	}
	return m.Outcome(cycles)
}

// Outcome summarises a closed-loop run.
type Outcome struct {
	// IPC is committed instructions per cycle per core.
	IPC float64
	// StallFraction is the fraction of core-cycles lost to full MSHRs.
	StallFraction float64
	// Misses and Replies count memory transactions issued and completed.
	Misses  int64
	Replies int64
	// AvgMemLatency is the mean request-to-reply round trip in cycles —
	// the quantity the network's flow control actually moves.
	AvgMemLatency float64
	// NetResult carries the underlying network statistics.
	NetResult core.Result
}

// Outcome computes the result after cycles of execution.
func (m *CMP) Outcome(cycles int64) Outcome {
	cores := int64(len(m.cores))
	return Outcome{
		IPC:           float64(m.committed) / float64(cycles) / float64(cores),
		StallFraction: float64(m.stallCyc) / float64(cycles*cores),
		Misses:        m.misses,
		Replies:       m.replies,
		AvgMemLatency: m.roundTrips.mean,
		NetResult:     m.net.Result(),
	}
}

// AppMissIntensity maps the benchmark models of the trace package onto
// closed-loop miss intensities (misses per 1000 instructions): the trace
// mean rate corresponds to the miss flux of an un-stalled core at the
// model's issue width.
func AppMissIntensity(meanRate float64, issueWidth int) float64 {
	return meanRate * 1000 / float64(issueWidth)
}
