package ptrace

import (
	"fmt"
	"sort"

	"photon/internal/core"
)

// Stream is the windowed counterpart of Tap + Assemble: a core.Tracer
// that assembles spans while the simulation runs and hands each span to
// a callback the moment the packet delivers, instead of retaining the
// whole event stream and the whole span set in memory. Resident state is
// bounded by the number of packets simultaneously in flight (plus a
// short tombstone window for post-delivery ACKs), so tracing a long run
// costs O(live packets), not O(total packets).
//
// The assembly grammar is byte-for-byte the one Assemble applies — both
// drive the same per-packet state machine — so a stream fed a Tap's
// records flushes exactly the spans Assemble would have built. The check
// battery pins that equivalence.
type Stream struct {
	cfg StreamConfig

	cursors map[uint64]*pktAsm
	seen    int64 // records accepted
	last    int64 // last accepted cycle (chronology check)

	flushed int64 // spans handed to OnSpan
	retired int64 // tombstones swept
	maxLive int   // peak resident cursor count

	err    error
	closed bool
}

// StreamConfig configures a Stream. OnSpan receives every assembled span
// exactly once: delivered non-faulted spans as they deliver, everything
// else (undelivered, faulted) at Close in (Injected, ID) order. A nil
// OnSpan discards spans — useful when only the stream's validation and
// stats are wanted. OnMeta receives packet-less records (token motion,
// faults) as they happen; nil discards them. An error from either
// callback latches and stops the stream.
type StreamConfig struct {
	OnSpan func(*PacketSpan) error
	OnMeta func(Record) error

	// RetireAfter is how many cycles a delivered packet's cursor lingers
	// as a tombstone so post-delivery ACKs still find it, before the
	// sweep reclaims it. Zero means the default (1024) — an order of
	// magnitude beyond a loop trip on the default 64-node ring, yet
	// small enough that tombstones retire long before a run ends.
	RetireAfter int64
	// SweepEvery is how many records pass between tombstone sweeps.
	// Zero means the default (512).
	SweepEvery int
}

const (
	defaultRetireAfter = 1024
	defaultSweepEvery  = 512
)

// NewStream returns a streaming assembler ready to attach with
// core.Network.SetTracer or to feed via Push.
func NewStream(cfg StreamConfig) *Stream {
	if cfg.RetireAfter <= 0 {
		cfg.RetireAfter = defaultRetireAfter
	}
	if cfg.SweepEvery <= 0 {
		cfg.SweepEvery = defaultSweepEvery
	}
	return &Stream{cfg: cfg, cursors: make(map[uint64]*pktAsm)}
}

// Err returns the first error the stream hit (malformed input or a
// callback failure); once set, further input is ignored.
func (s *Stream) Err() error { return s.err }

// Flushed returns how many spans have been handed to OnSpan so far.
func (s *Stream) Flushed() int64 { return s.flushed }

// MaxLive returns the peak number of resident packet cursors — the
// memory high-water mark the windowed mode exists to bound.
func (s *Stream) MaxLive() int { return s.maxLive }

// Observe implements core.Tracer with the same value-copy contract as
// Tap.Observe; assembly errors latch into Err.
func (s *Stream) Observe(e core.Event) {
	r := Record{Cycle: e.Cycle, Type: e.Type, Aux: e.Aux, DeliveredAt: -1}
	if p := e.Packet; p != nil {
		r.ID = p.ID
		r.Src, r.Dst = int32(p.Src), int32(p.Dst)
		r.Measured = p.Measured
		if e.Type == core.EvDeliver {
			r.DeliveredAt = p.DeliveredAt
		}
	} else {
		r.Meta = true
	}
	_ = s.Push(r)
}

// Push feeds one record through the assembler. The first error latches:
// the stream stays safe to push to but drops everything after the fault.
func (s *Stream) Push(r Record) error {
	if s.err != nil {
		return s.err
	}
	if s.closed {
		s.err = fmt.Errorf("ptrace: push into closed stream")
		return s.err
	}
	if err := s.push(r); err != nil {
		s.err = err
	}
	return s.err
}

func (s *Stream) push(r Record) error {
	if r.Cycle < 0 {
		return fmt.Errorf("ptrace: record %d: negative cycle %d", s.seen, r.Cycle)
	}
	if r.Cycle < s.last {
		return fmt.Errorf("ptrace: record %d: cycle %d before cycle %d (stream not chronological)",
			s.seen, r.Cycle, s.last)
	}
	s.last = r.Cycle
	s.seen++
	if s.seen%int64(s.cfg.SweepEvery) == 0 {
		s.sweep()
	}

	if r.Meta {
		switch r.Type {
		case core.EvTokenCapture, core.EvTokenRelease, core.EvTokenRegen, core.EvFault:
			if s.cfg.OnMeta != nil {
				if err := s.cfg.OnMeta(r); err != nil {
					return err
				}
			}
			return nil
		default:
			return fmt.Errorf("ptrace: record %d: meta record with packet event type %s", s.seen-1, r.Type)
		}
	}
	switch r.Type {
	case core.EvTokenCapture, core.EvTokenRelease, core.EvTokenRegen:
		return fmt.Errorf("ptrace: record %d: packet record with meta event type %s", s.seen-1, r.Type)
	}

	a := s.cursors[r.ID]
	if r.Type == core.EvInject {
		if a != nil {
			return fmt.Errorf("ptrace: record %d: packet %d injected twice", s.seen-1, r.ID)
		}
		span := &PacketSpan{
			ID: r.ID, Src: int(r.Src), Dst: int(r.Dst),
			Measured: r.Measured,
			Injected: r.Cycle, Delivered: -1,
		}
		s.cursors[r.ID] = &pktAsm{span: span, state: stInjected, mark: r.Cycle, last: r.Cycle, setasideAt: -1}
		if n := len(s.cursors); n > s.maxLive {
			s.maxLive = n
		}
		return nil
	}
	if a == nil {
		return fmt.Errorf("ptrace: record %d: %s for packet %d before its injection", s.seen-1, r.Type, r.ID)
	}
	if r.Cycle < a.last {
		return fmt.Errorf("ptrace: record %d: packet %d time runs backwards (%d after %d)",
			s.seen-1, r.ID, r.Cycle, a.last)
	}
	a.last = r.Cycle

	if a.span.Faulted {
		// Faulted spans keep exact counters but are held until Close:
		// the recovery grammar can touch them at any point.
		a.applyFaulted(r)
		return nil
	}
	wasDone := a.state == stDone
	if err := a.apply(r); err != nil {
		return fmt.Errorf("ptrace: record %d: %w", s.seen-1, err)
	}
	// Delivery completes a non-faulted span: flush it now. The cursor
	// stays behind as a tombstone so the packet's post-delivery ACK is
	// still legal; the sweep reclaims it RetireAfter cycles later.
	if !wasDone && a.state == stDone && !a.span.Faulted {
		return s.flush(a.span)
	}
	return nil
}

// sweep reclaims tombstones: delivered, already-flushed cursors whose
// last event is RetireAfter cycles in the past.
func (s *Stream) sweep() {
	for id, a := range s.cursors {
		if a.state == stDone && !a.span.Faulted && s.last-a.last >= s.cfg.RetireAfter {
			delete(s.cursors, id)
			s.retired++
		}
	}
}

func (s *Stream) flush(span *PacketSpan) error {
	s.flushed++
	if s.cfg.OnSpan == nil {
		return nil
	}
	return s.cfg.OnSpan(span)
}

// Close flushes every span still resident — undelivered packets with
// their phase prefix, faulted packets with their counters — in
// (Injected, ID) order, then drops all state. A latched error makes
// Close a no-op returning that error.
func (s *Stream) Close() error {
	if s.err != nil {
		return s.err
	}
	if s.closed {
		return nil
	}
	s.closed = true
	var rest []*pktAsm
	for _, a := range s.cursors {
		if a.state == stDone && !a.span.Faulted {
			continue // flushed at delivery; cursor was only a tombstone
		}
		rest = append(rest, a)
	}
	sort.Slice(rest, func(i, j int) bool {
		si, sj := rest[i].span, rest[j].span
		if si.Injected != sj.Injected {
			return si.Injected < sj.Injected
		}
		return si.ID < sj.ID
	})
	for _, a := range rest {
		if err := s.flush(a.span); err != nil {
			s.err = err
			return err
		}
	}
	s.cursors = nil
	return nil
}
