// Package ptrace is the protocol event tap and its span assembler: it
// turns the core engine's per-packet lifecycle event stream into exact
// latency attribution. A Tap (a core.Tracer) records every canonical
// digest event plus the tap-only arbitration-side events (head-ready,
// token capture/release, setaside entry/exit); Assemble folds the stream
// into per-packet span chains whose phases — injection pipeline, queue,
// token wait, optical flight, handshake wait, retransmit wait,
// circulation, ejection — are gap-free, non-overlapping, and sum exactly
// to the packet's end-to-end latency. That algebra is a checkable
// invariant on every registered scheme (internal/check runs it as a
// battery), and the aggregate Attribution replaces the approximate
// latency breakdown the experiment drivers previously derived from
// whole-run averages.
//
// The package is named ptrace (protocol trace) to keep it distinct from
// internal/trace, which holds application workload traces.
package ptrace

import "photon/internal/core"

// Record is one observed protocol event, copied out of the engine's
// mutable state at emission time. Meta records (token motion, token
// regeneration, packet-less faults) carry their payload in Aux; packet
// records identify the packet and, for delivery events, its final
// DeliveredAt timestamp (the delivery event fires at the ejection cycle,
// EjectLatency before the packet is handed to the core).
type Record struct {
	Cycle    int64
	Type     core.EventType
	Meta     bool // packet-less event; Aux holds the payload
	Measured bool // packet was injected inside the measurement window

	ID       uint64 // packet id (packet records only)
	Src, Dst int32  // packet endpoints (packet records only)

	Aux         uint64 // meta payload (fault class/element, token node/home)
	DeliveredAt int64  // EvDeliver only: final delivery cycle; -1 otherwise
}

// Tap is an in-memory event sink implementing core.Tracer. It appends one
// Record per observed event; attach it with core.Network.SetTracer (or
// Collect) before the first injection so every packet's stream starts at
// its birth.
type Tap struct {
	Records []Record
}

// NewTap returns an empty tap.
func NewTap() *Tap { return &Tap{} }

// Collect attaches a fresh tap to the network and returns it.
func Collect(net *core.Network) *Tap {
	t := NewTap()
	net.SetTracer(t)
	return t
}

// Observe implements core.Tracer: it copies the event into a Record. The
// engine keeps mutating the packet after the call, so everything the
// assembler needs is captured by value here.
func (t *Tap) Observe(e core.Event) {
	r := Record{Cycle: e.Cycle, Type: e.Type, Aux: e.Aux, DeliveredAt: -1}
	if p := e.Packet; p != nil {
		r.ID = p.ID
		r.Src, r.Dst = int32(p.Src), int32(p.Dst)
		r.Measured = p.Measured
		if e.Type == core.EvDeliver {
			r.DeliveredAt = p.DeliveredAt
		}
	} else {
		r.Meta = true
	}
	t.Records = append(t.Records, r)
}

// Assemble folds the tap's recorded stream into per-packet spans.
func (t *Tap) Assemble() (*TraceResult, error) {
	return Assemble(t.Records)
}
