package ptrace

import (
	"encoding/binary"
	"fmt"

	"photon/internal/core"
)

// Records have a fixed-width little-endian wire form so a recorded stream
// can be persisted, diffed, and — crucially — fuzzed: the assembler's
// error-not-panic contract is exercised by decoding arbitrary bytes and
// feeding them to Assemble.
//
// Layout (42 bytes per record):
//
//	off  0  type        u8
//	off  1  flags       u8   (bit 0: meta, bit 1: measured)
//	off  2  cycle       i64
//	off 10  id          u64
//	off 18  src         i32
//	off 22  dst         i32
//	off 26  aux         u64
//	off 34  deliveredAt i64
const recordSize = 42

const (
	flagMeta     = 1 << 0
	flagMeasured = 1 << 1
)

// EncodeRecords serialises the stream in its recorded order.
func EncodeRecords(records []Record) []byte {
	out := make([]byte, 0, len(records)*recordSize)
	var buf [recordSize]byte
	for _, r := range records {
		buf[0] = byte(r.Type)
		buf[1] = 0
		if r.Meta {
			buf[1] |= flagMeta
		}
		if r.Measured {
			buf[1] |= flagMeasured
		}
		binary.LittleEndian.PutUint64(buf[2:], uint64(r.Cycle))
		binary.LittleEndian.PutUint64(buf[10:], r.ID)
		binary.LittleEndian.PutUint32(buf[18:], uint32(r.Src))
		binary.LittleEndian.PutUint32(buf[22:], uint32(r.Dst))
		binary.LittleEndian.PutUint64(buf[26:], r.Aux)
		binary.LittleEndian.PutUint64(buf[34:], uint64(r.DeliveredAt))
		out = append(out, buf[:]...)
	}
	return out
}

// DecodeRecords parses a serialised stream. It validates only the frame
// (length a whole number of records, known flag bits, event type in
// range); stream-level coherence is Assemble's job, so a decoded stream
// may still be arbitrarily malformed.
func DecodeRecords(data []byte) ([]Record, error) {
	if len(data)%recordSize != 0 {
		return nil, fmt.Errorf("ptrace: %d bytes is not a whole number of %d-byte records", len(data), recordSize)
	}
	records := make([]Record, 0, len(data)/recordSize)
	for off := 0; off < len(data); off += recordSize {
		b := data[off : off+recordSize]
		if b[1]&^(flagMeta|flagMeasured) != 0 {
			return nil, fmt.Errorf("ptrace: record %d: unknown flag bits %#x", off/recordSize, b[1])
		}
		t := core.EventType(b[0])
		if t.String() == "event?" {
			return nil, fmt.Errorf("ptrace: record %d: unknown event type %d", off/recordSize, b[0])
		}
		records = append(records, Record{
			Type:        t,
			Meta:        b[1]&flagMeta != 0,
			Measured:    b[1]&flagMeasured != 0,
			Cycle:       int64(binary.LittleEndian.Uint64(b[2:])),
			ID:          binary.LittleEndian.Uint64(b[10:]),
			Src:         int32(binary.LittleEndian.Uint32(b[18:])),
			Dst:         int32(binary.LittleEndian.Uint32(b[22:])),
			Aux:         binary.LittleEndian.Uint64(b[26:]),
			DeliveredAt: int64(binary.LittleEndian.Uint64(b[34:])),
		})
	}
	return records, nil
}
