package ptrace

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"photon/internal/core"
	"photon/internal/sim"
	"photon/internal/traffic"
)

var streamWindow = sim.Window{Warmup: 300, Measure: 1200, Drain: 1000}

// tapRun simulates one scheme at one load with a batch Tap armed and
// returns the run result plus the raw record stream.
func tapRun(t *testing.T, s core.Scheme, load float64) (core.Result, []Record) {
	t.Helper()
	cfg := core.DefaultConfig(s)
	cfg.Seed = 1
	net, err := core.NewNetwork(cfg, streamWindow)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := traffic.NewInjector(traffic.UniformRandom{}, load, cfg.Nodes, cfg.CoresPerNode, 0x5EED)
	if err != nil {
		t.Fatal(err)
	}
	tap := Collect(net)
	res := inj.Run(net)
	return res, tap.Records
}

// streamAll pushes records through a fresh Stream and returns the spans
// and meta records it emitted, plus the stream for its stats.
func streamAll(t *testing.T, records []Record, cfg StreamConfig) ([]*PacketSpan, []Record, *Stream) {
	t.Helper()
	var spans []*PacketSpan
	var meta []Record
	userSpan := cfg.OnSpan
	cfg.OnSpan = func(s *PacketSpan) error {
		spans = append(spans, s)
		if userSpan != nil {
			return userSpan(s)
		}
		return nil
	}
	cfg.OnMeta = func(r Record) error {
		meta = append(meta, r)
		return nil
	}
	st := NewStream(cfg)
	for _, r := range records {
		if err := st.Push(r); err != nil {
			t.Fatalf("push: %v", err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return spans, meta, st
}

// TestStreamMatchesBatch pins the headline equivalence: for every
// registered scheme, feeding a Tap's records through the windowed Stream
// flushes exactly the spans Assemble builds — same set, same phases,
// same counters — while the resident cursor count stays far below the
// total packet population.
func TestStreamMatchesBatch(t *testing.T) {
	for _, s := range core.Schemes() {
		t.Run(s.String(), func(t *testing.T) {
			_, records := tapRun(t, s, 0.12)
			batch, err := Assemble(records)
			if err != nil {
				t.Fatal(err)
			}
			// Aggressive retirement exercises the tombstone sweep; 256
			// cycles still dwarfs a loop trip, so trailing ACKs are safe.
			spans, meta, st := streamAll(t, records, StreamConfig{
				RetireAfter: 256, SweepEvery: 64,
				OnSpan: func(sp *PacketSpan) error { return sp.Validate() },
			})

			if len(spans) != len(batch.Spans) {
				t.Fatalf("stream flushed %d spans, batch assembled %d", len(spans), len(batch.Spans))
			}
			got := make(map[uint64]*PacketSpan, len(spans))
			for _, sp := range spans {
				if got[sp.ID] != nil {
					t.Fatalf("packet %d flushed twice", sp.ID)
				}
				got[sp.ID] = sp
			}
			for _, want := range batch.Spans {
				if !reflect.DeepEqual(got[want.ID], want) {
					t.Fatalf("packet %d diverged:\n stream %+v\n batch  %+v", want.ID, got[want.ID], want)
				}
			}
			if len(meta) != len(batch.Tokens)+len(batch.Faults) {
				t.Fatalf("stream forwarded %d meta records, batch kept %d", len(meta), len(batch.Tokens)+len(batch.Faults))
			}

			// Streaming attribution over measured spans equals the batch
			// aggregate exactly.
			var inc Attribution
			for _, sp := range spans {
				inc.AddSpan(sp, true)
			}
			if inc != Aggregate(batch, true) {
				t.Fatalf("incremental attribution diverged:\n stream %+v\n batch  %+v", inc, Aggregate(batch, true))
			}

			if st.Flushed() != int64(len(spans)) {
				t.Fatalf("Flushed() = %d, emitted %d", st.Flushed(), len(spans))
			}
			if st.MaxLive() >= len(spans) {
				t.Fatalf("MaxLive %d did not bound memory below the %d-span population", st.MaxLive(), len(spans))
			}
			t.Logf("%s: %d spans, max %d live (%.1f%%)", s, len(spans), st.MaxLive(),
				100*float64(st.MaxLive())/float64(len(spans)))
		})
	}
}

// TestStreamAsTracer runs the same deterministic tape twice — once under
// the batch Tap, once with the Stream attached as the live tracer — and
// checks both the run digest (tracers are digest-inert) and the
// attribution agree.
func TestStreamAsTracer(t *testing.T) {
	scheme := core.GHS
	tape0 := core.DefaultConfig(scheme)
	tape, err := traffic.RecordTape(traffic.UniformRandom{}, 0.12, tape0.Nodes, tape0.CoresPerNode,
		7, streamWindow.Warmup+streamWindow.Measure)
	if err != nil {
		t.Fatal(err)
	}

	run := func(tr core.Tracer) core.Result {
		cfg := core.DefaultConfig(scheme)
		cfg.Seed = 1
		net, err := core.NewNetwork(cfg, streamWindow)
		if err != nil {
			t.Fatal(err)
		}
		net.SetTracer(tr)
		res, err := tape.Run(net)
		if err != nil {
			t.Fatal(err)
		}
		net.Drain(20_000)
		return res
	}

	tap := NewTap()
	resTap := run(tap)
	batch, err := tap.Assemble()
	if err != nil {
		t.Fatal(err)
	}

	var live Attribution
	st := NewStream(StreamConfig{OnSpan: func(sp *PacketSpan) error {
		if err := sp.Validate(); err != nil {
			return err
		}
		live.AddSpan(sp, true)
		return nil
	}})
	resStream := run(st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	if resTap.Digest != resStream.Digest {
		t.Fatalf("stream tracer perturbed the run: digest %016x vs %016x", resStream.Digest, resTap.Digest)
	}
	if live != Aggregate(batch, true) {
		t.Fatalf("live attribution diverged:\n stream %+v\n batch  %+v", live, Aggregate(batch, true))
	}
}

// TestStreamCloseFlushesTruncated feeds only a prefix of the stream and
// checks Close emits the in-flight remainder in (Injected, ID) order,
// matching the batch assembler on the same prefix.
func TestStreamCloseFlushesTruncated(t *testing.T) {
	_, records := tapRun(t, core.DHS, 0.12)
	half := records[:len(records)/2]
	batch, err := Assemble(half)
	if err != nil {
		t.Fatal(err)
	}
	spans, _, _ := streamAll(t, half, StreamConfig{})
	if len(spans) != len(batch.Spans) {
		t.Fatalf("stream emitted %d spans on the prefix, batch %d", len(spans), len(batch.Spans))
	}

	var undelivered []*PacketSpan
	for _, sp := range spans {
		if sp.Delivered < 0 {
			undelivered = append(undelivered, sp)
		}
	}
	if len(undelivered) == 0 {
		t.Fatal("truncated prefix left nothing in flight; test is vacuous")
	}
	ordered := sort.SliceIsSorted(undelivered, func(i, j int) bool {
		if undelivered[i].Injected != undelivered[j].Injected {
			return undelivered[i].Injected < undelivered[j].Injected
		}
		return undelivered[i].ID < undelivered[j].ID
	})
	if !ordered {
		t.Fatal("Close did not emit in-flight spans in (Injected, ID) order")
	}
}

// TestStreamRejectsMalformed pins the error latch: malformed input stops
// the stream, later pushes return the same error, Close refuses.
func TestStreamRejectsMalformed(t *testing.T) {
	st := NewStream(StreamConfig{})
	if err := st.Push(Record{Cycle: 5, Type: core.EvEnqueue, ID: 1}); err == nil {
		t.Fatal("event before injection accepted")
	}
	first := st.Err()
	if err := st.Push(Record{Cycle: 6, Type: core.EvInject, ID: 2}); err != first {
		t.Fatalf("latched error not sticky: %v vs %v", err, first)
	}
	if err := st.Close(); err != first {
		t.Fatalf("Close ignored the latched error: %v", err)
	}

	st = NewStream(StreamConfig{})
	if err := st.Push(Record{Cycle: 10, Type: core.EvInject, ID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := st.Push(Record{Cycle: 4, Type: core.EvInject, ID: 2}); err == nil {
		t.Fatal("non-chronological stream accepted")
	}

	st = NewStream(StreamConfig{})
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Push(Record{Cycle: 0, Type: core.EvInject, ID: 1}); err == nil {
		t.Fatal("push into closed stream accepted")
	}
}

// TestStreamCallbackErrorLatches pins callback error propagation.
func TestStreamCallbackErrorLatches(t *testing.T) {
	_, records := tapRun(t, core.TokenSlot, 0.05)
	boom := fmt.Errorf("consumer rejected span")
	st := NewStream(StreamConfig{OnSpan: func(*PacketSpan) error { return boom }})
	var got error
	for _, r := range records {
		if got = st.Push(r); got != nil {
			break
		}
	}
	if got == nil {
		t.Fatal("no span ever flushed; test is vacuous")
	}
	if got.Error() != boom.Error() {
		t.Fatalf("callback error lost: %v", got)
	}
}
