package ptrace

import (
	"fmt"

	"photon/internal/core"
)

// PhaseKind labels one latency phase of a packet's span chain. The phases
// partition a delivered packet's end-to-end latency exactly: consecutive
// phases share their boundary cycle, and the lengths sum to
// DeliveredAt - CreatedAt with no gap and no overlap.
type PhaseKind uint8

const (
	// PhasePipeline: electrical injection pipeline, creation to output
	// queue (for node-local traffic: creation to local delivery).
	PhasePipeline PhaseKind = iota
	// PhaseQueue: waiting in the output queue behind other packets,
	// enqueue to head-eligibility.
	PhaseQueue
	// PhaseTokenWait: head-eligible to first launch — the arbitration
	// (token waiting) time the paper's handshake schemes attack.
	PhaseTokenWait
	// PhaseFlight: on the optical data channel, launch to arrival at the
	// home node (every launch attempt contributes one flight phase).
	PhaseFlight
	// PhaseHandshakeWait: from a receiver drop to the NACK pulse reaching
	// the sender (handshake schemes only).
	PhaseHandshakeWait
	// PhaseRetxWait: from the NACK's arrival to the retransmission's
	// launch — re-arbitration time spent parked in a setaside slot
	// (Setaside policy) or pinned at the queue head (HoldHead).
	PhaseRetxWait
	// PhaseCirculation: extra loop trips taken at the receiver instead of
	// dropping (DHS with circulation), arrival to arrival.
	PhaseCirculation
	// PhaseEject: buffered at the home node and ejecting, acceptance to
	// final delivery (includes the electrical ejection latency).
	PhaseEject

	// NumPhases is the number of phase kinds.
	NumPhases = int(PhaseEject) + 1
)

func (k PhaseKind) String() string {
	switch k {
	case PhasePipeline:
		return "pipeline"
	case PhaseQueue:
		return "queue"
	case PhaseTokenWait:
		return "token-wait"
	case PhaseFlight:
		return "flight"
	case PhaseHandshakeWait:
		return "handshake-wait"
	case PhaseRetxWait:
		return "retx-wait"
	case PhaseCirculation:
		return "circulation"
	case PhaseEject:
		return "eject"
	default:
		return "phase?"
	}
}

// Phase is one half-open latency interval [From, To) of a span chain; a
// zero-length phase (From == To) records a stage the packet crossed
// within a single cycle (e.g. a NACKed packet relaunching the cycle its
// NACK arrived).
type Phase struct {
	Kind     PhaseKind
	From, To int64
}

// Len returns the phase length in cycles.
func (p Phase) Len() int64 { return p.To - p.From }

// PacketSpan is one packet's assembled lifecycle: its phase chain plus
// the attempt counters the conservation ledgers cross-check.
type PacketSpan struct {
	ID       uint64
	Src, Dst int
	Measured bool
	Local    bool // delivered node-locally, never entered the ring

	Injected  int64 // creation cycle
	Delivered int64 // final delivery cycle; -1 while undelivered

	// Phases is the gap-free chain; for a delivered packet the lengths
	// sum exactly to Delivered - Injected.
	Phases []Phase

	Launches     int // launch attempts (retransmissions included)
	Drops        int // receiver NACK-drops experienced
	Circulations int // extra receiver loop trips

	// Setaside is the packet's setaside-slot residency in cycles. It
	// overlaps the flight/handshake phases (the slot is occupied while
	// the packet flies and awaits its answer), so it annotates the span
	// rather than joining the phase sum.
	Setaside int64

	// Faulted marks a packet touched by fault injection or recovery
	// (destroyed copy, timeout retransmission, duplicate discard). Its
	// counters stay exact but its phase chain is not reconstructed —
	// exact attribution is defined over fault-free protocol behaviour.
	Faulted bool
}

// Latency returns end-to-end latency; -1 while undelivered.
func (s *PacketSpan) Latency() int64 {
	if s.Delivered < 0 {
		return -1
	}
	return s.Delivered - s.Injected
}

// PhaseSum returns the total length of the span's phase chain.
func (s *PacketSpan) PhaseSum() int64 {
	var sum int64
	for _, p := range s.Phases {
		sum += p.Len()
	}
	return sum
}

// PhaseCycles returns the span's cycles by phase kind.
func (s *PacketSpan) PhaseCycles() [NumPhases]int64 {
	var out [NumPhases]int64
	for _, p := range s.Phases {
		out[p.Kind] += p.Len()
	}
	return out
}

// Validate checks the span-chain invariants independently of how the
// chain was built: chronological, gap-free, non-overlapping phases
// starting at the injection cycle, and — for a delivered, non-faulted
// packet — a phase sum exactly equal to the end-to-end latency.
func (s *PacketSpan) Validate() error {
	if s.Faulted {
		return nil // phases are not reconstructed under fault injection
	}
	at := s.Injected
	for i, p := range s.Phases {
		if p.From != at {
			return fmt.Errorf("ptrace: packet %d phase %d (%s) starts at %d, chain is at %d (gap or overlap)",
				s.ID, i, p.Kind, p.From, at)
		}
		if p.To < p.From {
			return fmt.Errorf("ptrace: packet %d phase %d (%s) runs backwards [%d,%d)", s.ID, i, p.Kind, p.From, p.To)
		}
		at = p.To
	}
	if s.Delivered >= 0 {
		if at != s.Delivered {
			return fmt.Errorf("ptrace: packet %d chain ends at %d, delivered at %d", s.ID, at, s.Delivered)
		}
		if got, want := s.PhaseSum(), s.Latency(); got != want {
			return fmt.Errorf("ptrace: packet %d phase sum %d != latency %d", s.ID, got, want)
		}
	}
	return nil
}

// TraceResult is an assembled event stream: per-packet spans in injection
// order plus the packet-less meta records (token motion, faults).
type TraceResult struct {
	Spans  []*PacketSpan
	Tokens []Record // EvTokenCapture / EvTokenRelease / EvTokenRegen
	Faults []Record // packet-less EvFault records

	byID map[uint64]*PacketSpan
}

// Span returns the span for packet id, or nil.
func (tr *TraceResult) Span(id uint64) *PacketSpan { return tr.byID[id] }

// assembly states of one packet.
const (
	stInjected = iota // created, in the electrical injection pipeline
	stEnqueued        // in the output queue, not yet head-eligible
	stReady           // head-eligible, awaiting arbitration
	stFlight          // on the data waveguide
	stDropped         // dropped at the home, NACK in flight
	stNacked          // NACK received, awaiting retransmission
	stCirc            // reinjected, circulating for another loop
	stBuffered        // accepted into the home input buffer
	stDone            // delivered
)

func stateName(st int) string {
	switch st {
	case stInjected:
		return "injected"
	case stEnqueued:
		return "enqueued"
	case stReady:
		return "ready"
	case stFlight:
		return "in-flight"
	case stDropped:
		return "dropped"
	case stNacked:
		return "nacked"
	case stCirc:
		return "circulating"
	case stBuffered:
		return "buffered"
	case stDone:
		return "delivered"
	default:
		return "state?"
	}
}

// pktAsm is the per-packet assembly cursor.
type pktAsm struct {
	span       *PacketSpan
	state      int
	mark       int64 // cycle anchoring the currently open phase
	last       int64 // cycle of the packet's previous event
	setasideAt int64 // open setaside residency start, or -1
}

// Assemble folds an event stream into per-packet spans. The stream must
// be chronologically ordered (as a Tap records it); a malformed or
// truncated stream — an event before its packet's injection, an
// impossible state transition, time running backwards — returns an
// error and never panics, so the assembler is safe on untrusted input
// (it is fuzzed on exactly that contract). Packets touched by fault
// injection are marked Faulted and kept with exact counters but without
// a reconstructed phase chain; truncated streams yield undelivered
// spans, which carry their phase prefix.
func Assemble(records []Record) (*TraceResult, error) {
	tr := &TraceResult{byID: make(map[uint64]*PacketSpan)}
	cursors := make(map[uint64]*pktAsm)
	var lastCycle int64

	for i, r := range records {
		if r.Cycle < 0 {
			return nil, fmt.Errorf("ptrace: record %d: negative cycle %d", i, r.Cycle)
		}
		if r.Cycle < lastCycle {
			return nil, fmt.Errorf("ptrace: record %d: cycle %d before cycle %d (stream not chronological)",
				i, r.Cycle, lastCycle)
		}
		lastCycle = r.Cycle

		if r.Meta {
			switch r.Type {
			case core.EvTokenCapture, core.EvTokenRelease, core.EvTokenRegen:
				tr.Tokens = append(tr.Tokens, r)
			case core.EvFault:
				tr.Faults = append(tr.Faults, r)
			default:
				return nil, fmt.Errorf("ptrace: record %d: meta record with packet event type %s", i, r.Type)
			}
			continue
		}

		switch r.Type {
		case core.EvTokenCapture, core.EvTokenRelease, core.EvTokenRegen:
			return nil, fmt.Errorf("ptrace: record %d: packet record with meta event type %s", i, r.Type)
		}

		a := cursors[r.ID]
		if r.Type == core.EvInject {
			if a != nil {
				return nil, fmt.Errorf("ptrace: record %d: packet %d injected twice", i, r.ID)
			}
			s := &PacketSpan{
				ID: r.ID, Src: int(r.Src), Dst: int(r.Dst),
				Measured: r.Measured,
				Injected: r.Cycle, Delivered: -1,
			}
			tr.Spans = append(tr.Spans, s)
			tr.byID[r.ID] = s
			cursors[r.ID] = &pktAsm{span: s, state: stInjected, mark: r.Cycle, last: r.Cycle, setasideAt: -1}
			continue
		}
		if a == nil {
			return nil, fmt.Errorf("ptrace: record %d: %s for packet %d before its injection", i, r.Type, r.ID)
		}
		if r.Cycle < a.last {
			return nil, fmt.Errorf("ptrace: record %d: packet %d time runs backwards (%d after %d)",
				i, r.ID, r.Cycle, a.last)
		}
		a.last = r.Cycle

		if a.span.Faulted {
			a.applyFaulted(r)
			continue
		}
		if err := a.apply(r); err != nil {
			return nil, fmt.Errorf("ptrace: record %d: %w", i, err)
		}
	}
	return tr, nil
}

// phase closes the open interval [mark, to) as kind and re-anchors at to.
func (a *pktAsm) phase(kind PhaseKind, to int64) {
	a.span.Phases = append(a.span.Phases, Phase{Kind: kind, From: a.mark, To: to})
	a.mark = to
}

// badState reports an impossible transition.
func (a *pktAsm) badState(t core.EventType) error {
	return fmt.Errorf("%s for %s packet %d", t, stateName(a.state), a.span.ID)
}

// apply advances the packet's state machine by one event (strict,
// fault-free grammar).
func (a *pktAsm) apply(r Record) error {
	s := a.span
	switch r.Type {
	case core.EvEnqueue:
		if a.state != stInjected {
			return a.badState(r.Type)
		}
		a.phase(PhasePipeline, r.Cycle)
		a.state = stEnqueued

	case core.EvHeadReady:
		if a.state != stEnqueued {
			return a.badState(r.Type)
		}
		a.phase(PhaseQueue, r.Cycle)
		a.state = stReady

	case core.EvLaunch:
		switch a.state {
		case stReady:
			a.phase(PhaseTokenWait, r.Cycle)
		case stNacked:
			a.phase(PhaseRetxWait, r.Cycle)
		default:
			return a.badState(r.Type)
		}
		a.state = stFlight
		s.Launches++

	case core.EvSetasideEnter:
		if a.state != stFlight || a.setasideAt >= 0 {
			return a.badState(r.Type)
		}
		a.setasideAt = r.Cycle

	case core.EvSetasideExit:
		if a.setasideAt < 0 {
			return a.badState(r.Type)
		}
		s.Setaside += r.Cycle - a.setasideAt
		a.setasideAt = -1

	case core.EvAccept:
		switch a.state {
		case stFlight:
			a.phase(PhaseFlight, r.Cycle)
		case stCirc:
			a.phase(PhaseCirculation, r.Cycle)
		default:
			return a.badState(r.Type)
		}
		a.state = stBuffered

	case core.EvReinject:
		switch a.state {
		case stFlight:
			a.phase(PhaseFlight, r.Cycle)
		case stCirc:
			a.phase(PhaseCirculation, r.Cycle)
		default:
			return a.badState(r.Type)
		}
		a.state = stCirc
		s.Circulations++

	case core.EvDrop:
		if a.state != stFlight {
			return a.badState(r.Type)
		}
		a.phase(PhaseFlight, r.Cycle)
		a.state = stDropped
		s.Drops++

	case core.EvNack:
		if a.state != stDropped {
			return a.badState(r.Type)
		}
		a.phase(PhaseHandshakeWait, r.Cycle)
		a.state = stNacked

	case core.EvAck:
		// The ACK of an accepted packet reaching the sender: it releases
		// retention state but adds nothing to this packet's latency (it
		// may arrive before or after the delivery itself).
		if a.state != stBuffered && a.state != stDone {
			return a.badState(r.Type)
		}

	case core.EvDeliver:
		if r.DeliveredAt < r.Cycle {
			return fmt.Errorf("packet %d delivered at %d before its delivery event at %d",
				s.ID, r.DeliveredAt, r.Cycle)
		}
		switch a.state {
		case stInjected:
			// Node-local traffic: delivered straight out of the router
			// pipeline, no queue, no ring.
			a.phase(PhasePipeline, r.Cycle)
			a.phase(PhaseEject, r.DeliveredAt)
			s.Local = true
		case stBuffered:
			a.phase(PhaseEject, r.DeliveredAt)
		default:
			return a.badState(r.Type)
		}
		a.state = stDone
		s.Delivered = r.DeliveredAt

	case core.EvFault, core.EvTimeout, core.EvDupDrop:
		// Fault injection touched this packet: keep counting, stop
		// reconstructing phases.
		s.Faulted = true
		s.Phases = nil

	default:
		return fmt.Errorf("unknown event type %d for packet %d", int(r.Type), s.ID)
	}
	return nil
}

// applyFaulted keeps a faulted packet's ledger-facing counters exact
// without attempting phase reconstruction: the recovery grammar (timeout
// copies, duplicate arrivals, destroyed flits) is deliberately out of
// scope for exact attribution.
func (a *pktAsm) applyFaulted(r Record) {
	s := a.span
	switch r.Type {
	case core.EvLaunch:
		s.Launches++
	case core.EvDrop:
		s.Drops++
	case core.EvReinject:
		s.Circulations++
	case core.EvDeliver:
		if r.DeliveredAt >= 0 && s.Delivered < 0 {
			s.Delivered = r.DeliveredAt
		}
		a.state = stDone
	}
}

// Attribution is the aggregate of a trace's delivered, non-faulted spans:
// total cycles by phase, plus the counters the conservation ledgers
// cross-check. Averages over the aggregated population reproduce the
// run's measured latency statistics exactly.
type Attribution struct {
	Spans int64 // delivered spans aggregated
	Local int64 // of which node-local

	Phases   [NumPhases]int64 // total cycles by phase
	Total    int64            // total end-to-end cycles
	Setaside int64            // total setaside residency (overlapping)

	Launches, Drops, Circulations int64
}

// AddSpan folds one span into the aggregate, returning whether it was
// counted (undelivered, faulted, and — with measuredOnly — warmup/drain
// spans are skipped). It is the incremental half of Aggregate, so a
// streaming consumer can attribute latency span-by-span without ever
// holding the full trace.
func (a *Attribution) AddSpan(s *PacketSpan, measuredOnly bool) bool {
	if s.Delivered < 0 || s.Faulted || (measuredOnly && !s.Measured) {
		return false
	}
	a.Spans++
	if s.Local {
		a.Local++
	}
	for _, p := range s.Phases {
		a.Phases[p.Kind] += p.Len()
	}
	a.Total += s.Latency()
	a.Setaside += s.Setaside
	a.Launches += int64(s.Launches)
	a.Drops += int64(s.Drops)
	a.Circulations += int64(s.Circulations)
	return true
}

// Aggregate sums a trace's delivered, non-faulted spans. With
// measuredOnly set it covers exactly the population behind the run's
// latency statistics: packets injected inside the measurement window.
func Aggregate(tr *TraceResult, measuredOnly bool) Attribution {
	var a Attribution
	for _, s := range tr.Spans {
		a.AddSpan(s, measuredOnly)
	}
	return a
}

// Remote returns the number of aggregated spans that crossed the ring.
func (a Attribution) Remote() int64 { return a.Spans - a.Local }

// AvgPhase returns the phase's mean cycles over all aggregated spans.
func (a Attribution) AvgPhase(k PhaseKind) float64 {
	if a.Spans == 0 {
		return 0
	}
	return float64(a.Phases[k]) / float64(a.Spans)
}

// AvgTotal returns mean end-to-end latency over all aggregated spans.
func (a Attribution) AvgTotal() float64 {
	if a.Spans == 0 {
		return 0
	}
	return float64(a.Total) / float64(a.Spans)
}
