package ptrace

import (
	"encoding/json"
	"fmt"
	"io"

	"photon/internal/core"
)

// chromeEvent is one entry of the Chrome trace-event JSON array
// (load the output at chrome://tracing or https://ui.perfetto.dev).
// Timestamps are simulator cycles, not microseconds: the viewers only
// need a monotone unit.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   uint64         `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the trace as a Chrome trace-event JSON array:
// one complete ("X") slice per span phase, grouped by source node (pid)
// and packet id (tid), plus instant events for token captures and
// faults. Undelivered spans export their phase prefix; faulted spans
// export no phases (they have none) but keep their instants.
func WriteChromeTrace(w io.Writer, tr *TraceResult) error {
	events := make([]chromeEvent, 0, len(tr.Spans)*4+len(tr.Tokens)+len(tr.Faults))
	for _, s := range tr.Spans {
		for _, p := range s.Phases {
			events = append(events, chromeEvent{
				Name:  p.Kind.String(),
				Phase: "X",
				TS:    p.From,
				Dur:   p.Len(),
				PID:   s.Src,
				TID:   s.ID,
				Args: map[string]any{
					"dst":      s.Dst,
					"measured": s.Measured,
				},
			})
		}
		if s.Setaside > 0 {
			events = append(events, chromeEvent{
				Name: "setaside", Phase: "i", TS: s.Injected,
				PID: s.Src, TID: s.ID, Scope: "t",
				Args: map[string]any{"cycles": s.Setaside},
			})
		}
	}
	for _, t := range tr.Tokens {
		node, home := core.TokenAux(t.Aux)
		events = append(events, chromeEvent{
			Name: t.Type.String(), Phase: "i", TS: t.Cycle,
			PID: node, Scope: "t",
			Args: map[string]any{"home": home},
		})
	}
	for _, f := range tr.Faults {
		events = append(events, chromeEvent{
			Name: "fault", Phase: "i", TS: f.Cycle, Scope: "g",
			Args: map[string]any{"aux": f.Aux},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// WriteFlame renders the trace's aggregate attribution as folded stack
// lines ("frame;frame;frame cycles", one per line) — the input format of
// flame-graph builders. The stack root is the given label (typically the
// scheme name), split by local/remote delivery, with one leaf per phase;
// setaside residency appears as an extra annotated leaf because it
// overlaps the flight and handshake phases rather than joining the sum.
func WriteFlame(w io.Writer, tr *TraceResult, label string) error {
	var local, remote Attribution
	for _, s := range tr.Spans {
		if s.Delivered < 0 || s.Faulted {
			continue
		}
		a := &remote
		if s.Local {
			a = &local
		}
		a.Spans++
		for _, p := range s.Phases {
			a.Phases[p.Kind] += p.Len()
		}
		a.Total += s.Latency()
		a.Setaside += s.Setaside
	}
	emit := func(class string, a Attribution) error {
		for k := 0; k < NumPhases; k++ {
			if a.Phases[k] == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s;%s;%s %d\n", label, class, PhaseKind(k), a.Phases[k]); err != nil {
				return err
			}
		}
		if a.Setaside > 0 {
			if _, err := fmt.Fprintf(w, "%s;%s;(setaside overlap) %d\n", label, class, a.Setaside); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit("remote", remote); err != nil {
		return err
	}
	return emit("local", local)
}
