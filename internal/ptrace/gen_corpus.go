//go:build ignore

// gen_corpus regenerates the checked-in fuzz seed corpus under
// testdata/fuzz/FuzzAssemble: one file per well-formed protocol stream
// (the same streams FuzzAssemble seeds via f.Add), in the `go test fuzz
// v1` encoding. Run from this directory:
//
//	go run gen_corpus.go
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"photon/internal/core"
	"photon/internal/ptrace"
)

func pkt(cycle int64, t core.EventType, id uint64) ptrace.Record {
	return ptrace.Record{Cycle: cycle, Type: t, ID: id, Src: 3, Dst: 7, Measured: true, DeliveredAt: -1}
}

func deliver(cycle int64, id uint64, deliveredAt int64) ptrace.Record {
	r := pkt(cycle, core.EvDeliver, id)
	r.DeliveredAt = deliveredAt
	return r
}

func main() {
	seeds := map[string][]ptrace.Record{
		"clean-delivery": {
			pkt(10, core.EvInject, 1),
			pkt(12, core.EvEnqueue, 1),
			pkt(15, core.EvHeadReady, 1),
			pkt(20, core.EvLaunch, 1),
			pkt(28, core.EvAccept, 1),
			deliver(30, 1, 31),
			pkt(36, core.EvAck, 1),
		},
		"nack-setaside": {
			pkt(0, core.EvInject, 4),
			pkt(2, core.EvEnqueue, 4),
			pkt(3, core.EvHeadReady, 4),
			pkt(4, core.EvLaunch, 4),
			pkt(4, core.EvSetasideEnter, 4),
			pkt(10, core.EvDrop, 4),
			pkt(16, core.EvNack, 4),
			pkt(18, core.EvLaunch, 4),
			pkt(24, core.EvAccept, 4),
			deliver(25, 4, 26),
			pkt(30, core.EvAck, 4),
			pkt(30, core.EvSetasideExit, 4),
		},
		"circulation": {
			pkt(0, core.EvInject, 2),
			pkt(2, core.EvEnqueue, 2),
			pkt(2, core.EvHeadReady, 2),
			pkt(3, core.EvLaunch, 2),
			pkt(9, core.EvReinject, 2),
			pkt(73, core.EvAccept, 2),
			deliver(74, 2, 75),
		},
		"local-and-token": {
			{Cycle: 3, Type: core.EvTokenCapture, Meta: true, Aux: 1<<32 | 5, DeliveredAt: -1},
			pkt(5, core.EvInject, 8),
			deliver(7, 8, 8),
			{Cycle: 9, Type: core.EvTokenRelease, Meta: true, Aux: 1<<32 | 5, DeliveredAt: -1},
		},
		"fault-lenient": {
			pkt(0, core.EvInject, 6),
			pkt(2, core.EvEnqueue, 6),
			pkt(3, core.EvHeadReady, 6),
			pkt(4, core.EvLaunch, 6),
			pkt(40, core.EvTimeout, 6),
			pkt(41, core.EvLaunch, 6),
			pkt(47, core.EvAccept, 6),
			deliver(48, 6, 49),
		},
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzAssemble")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for name, records := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", ptrace.EncodeRecords(records))
		if err := os.WriteFile(filepath.Join(dir, "seed-"+name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
}
