package ptrace

import (
	"bytes"
	"strings"
	"testing"

	"photon/internal/core"
)

// pkt builds a packet record.
func pkt(cycle int64, t core.EventType, id uint64) Record {
	return Record{Cycle: cycle, Type: t, ID: id, Src: 3, Dst: 7, Measured: true, DeliveredAt: -1}
}

// deliver builds a delivery record (fires at the ejection cycle,
// deliveredAt one EjectLatency later).
func deliver(cycle int64, id uint64, deliveredAt int64) Record {
	r := pkt(cycle, core.EvDeliver, id)
	r.DeliveredAt = deliveredAt
	return r
}

func mustAssemble(t *testing.T, records []Record) *TraceResult {
	t.Helper()
	tr, err := Assemble(records)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	for _, s := range tr.Spans {
		if err := s.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
	}
	return tr
}

func wantPhases(t *testing.T, s *PacketSpan, want []Phase) {
	t.Helper()
	if len(s.Phases) != len(want) {
		t.Fatalf("packet %d: got %d phases %v, want %d %v", s.ID, len(s.Phases), s.Phases, len(want), want)
	}
	for i, p := range want {
		if s.Phases[i] != p {
			t.Fatalf("packet %d phase %d: got %+v, want %+v", s.ID, i, s.Phases[i], p)
		}
	}
}

func TestAssembleCleanDelivery(t *testing.T) {
	tr := mustAssemble(t, []Record{
		pkt(10, core.EvInject, 1),
		pkt(12, core.EvEnqueue, 1),
		pkt(15, core.EvHeadReady, 1),
		pkt(20, core.EvLaunch, 1),
		pkt(28, core.EvAccept, 1),
		deliver(30, 1, 31),
		pkt(36, core.EvAck, 1),
	})
	s := tr.Span(1)
	if s == nil {
		t.Fatal("no span for packet 1")
	}
	wantPhases(t, s, []Phase{
		{PhasePipeline, 10, 12},
		{PhaseQueue, 12, 15},
		{PhaseTokenWait, 15, 20},
		{PhaseFlight, 20, 28},
		{PhaseEject, 28, 31},
	})
	if s.Latency() != 21 || s.PhaseSum() != 21 {
		t.Fatalf("latency %d, phase sum %d, want 21", s.Latency(), s.PhaseSum())
	}
	if s.Launches != 1 || s.Drops != 0 || s.Local || s.Faulted {
		t.Fatalf("bad counters: %+v", s)
	}
}

func TestAssembleNackRetransmit(t *testing.T) {
	tr := mustAssemble(t, []Record{
		pkt(0, core.EvInject, 9),
		pkt(2, core.EvEnqueue, 9),
		pkt(2, core.EvHeadReady, 9), // same-cycle head eligibility: zero-length queue phase
		pkt(5, core.EvLaunch, 9),
		pkt(11, core.EvDrop, 9),
		pkt(17, core.EvNack, 9),
		pkt(17, core.EvLaunch, 9), // relaunch the cycle the NACK landed
		pkt(23, core.EvAccept, 9),
		deliver(24, 9, 25),
		pkt(29, core.EvAck, 9),
	})
	s := tr.Span(9)
	wantPhases(t, s, []Phase{
		{PhasePipeline, 0, 2},
		{PhaseQueue, 2, 2},
		{PhaseTokenWait, 2, 5},
		{PhaseFlight, 5, 11},
		{PhaseHandshakeWait, 11, 17},
		{PhaseRetxWait, 17, 17},
		{PhaseFlight, 17, 23},
		{PhaseEject, 23, 25},
	})
	if s.Launches != 2 || s.Drops != 1 {
		t.Fatalf("launches %d drops %d, want 2/1", s.Launches, s.Drops)
	}
	if s.PhaseSum() != s.Latency() {
		t.Fatalf("phase sum %d != latency %d", s.PhaseSum(), s.Latency())
	}
}

func TestAssembleSetasideResidency(t *testing.T) {
	tr := mustAssemble(t, []Record{
		pkt(0, core.EvInject, 4),
		pkt(2, core.EvEnqueue, 4),
		pkt(3, core.EvHeadReady, 4),
		pkt(4, core.EvLaunch, 4),
		pkt(4, core.EvSetasideEnter, 4), // parked on first launch only
		pkt(10, core.EvDrop, 4),
		pkt(16, core.EvNack, 4),
		pkt(18, core.EvLaunch, 4), // retransmission: no second enter
		pkt(24, core.EvAccept, 4),
		deliver(25, 4, 26),
		pkt(30, core.EvAck, 4),
		pkt(30, core.EvSetasideExit, 4),
	})
	s := tr.Span(4)
	if s.Setaside != 26 {
		t.Fatalf("setaside residency %d, want 26", s.Setaside)
	}
	// Residency overlaps the phases; the sum must still be exact.
	if s.PhaseSum() != s.Latency() {
		t.Fatalf("phase sum %d != latency %d", s.PhaseSum(), s.Latency())
	}
	if s.Launches != 2 || s.Drops != 1 {
		t.Fatalf("launches %d drops %d, want 2/1", s.Launches, s.Drops)
	}
}

func TestAssembleCirculation(t *testing.T) {
	tr := mustAssemble(t, []Record{
		pkt(0, core.EvInject, 2),
		pkt(2, core.EvEnqueue, 2),
		pkt(2, core.EvHeadReady, 2),
		pkt(3, core.EvLaunch, 2),
		pkt(9, core.EvReinject, 2),  // home full: another loop
		pkt(73, core.EvReinject, 2), // still full
		pkt(137, core.EvAccept, 2),
		deliver(138, 2, 139),
	})
	s := tr.Span(2)
	wantPhases(t, s, []Phase{
		{PhasePipeline, 0, 2},
		{PhaseQueue, 2, 2},
		{PhaseTokenWait, 2, 3},
		{PhaseFlight, 3, 9},
		{PhaseCirculation, 9, 73},
		{PhaseCirculation, 73, 137},
		{PhaseEject, 137, 139},
	})
	if s.Circulations != 2 {
		t.Fatalf("circulations %d, want 2", s.Circulations)
	}
}

func TestAssembleLocalDelivery(t *testing.T) {
	tr := mustAssemble(t, []Record{
		pkt(5, core.EvInject, 8),
		deliver(7, 8, 8),
	})
	s := tr.Span(8)
	if !s.Local {
		t.Fatal("span not marked local")
	}
	wantPhases(t, s, []Phase{
		{PhasePipeline, 5, 7},
		{PhaseEject, 7, 8},
	})
}

func TestAssembleUndeliveredKeepsPrefix(t *testing.T) {
	tr := mustAssemble(t, []Record{
		pkt(0, core.EvInject, 1),
		pkt(2, core.EvEnqueue, 1),
		pkt(4, core.EvHeadReady, 1),
		pkt(6, core.EvLaunch, 1),
	})
	s := tr.Span(1)
	if s.Delivered != -1 || s.Latency() != -1 {
		t.Fatalf("undelivered span reports delivery: %+v", s)
	}
	if len(s.Phases) != 3 { // pipeline, queue, token-wait; flight still open
		t.Fatalf("got %d phases, want 3 (open flight not closed)", len(s.Phases))
	}
}

func TestAssembleFaultedLenient(t *testing.T) {
	tr := mustAssemble(t, []Record{
		pkt(0, core.EvInject, 6),
		pkt(2, core.EvEnqueue, 6),
		pkt(3, core.EvHeadReady, 6),
		pkt(4, core.EvLaunch, 6),
		pkt(40, core.EvTimeout, 6), // fault recovery: exact attribution off
		pkt(41, core.EvLaunch, 6),
		pkt(47, core.EvAccept, 6),
		deliver(48, 6, 49),
	})
	s := tr.Span(6)
	if !s.Faulted {
		t.Fatal("span not marked faulted")
	}
	if len(s.Phases) != 0 {
		t.Fatalf("faulted span kept phases: %v", s.Phases)
	}
	if s.Launches != 2 || s.Delivered != 49 {
		t.Fatalf("faulted counters wrong: %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("faulted span must validate leniently: %v", err)
	}
}

func TestAssembleTokenMeta(t *testing.T) {
	tr := mustAssemble(t, []Record{
		{Cycle: 3, Type: core.EvTokenCapture, Meta: true, Aux: 77, DeliveredAt: -1},
		{Cycle: 9, Type: core.EvTokenRelease, Meta: true, Aux: 77, DeliveredAt: -1},
	})
	if len(tr.Tokens) != 2 || len(tr.Spans) != 0 {
		t.Fatalf("got %d tokens %d spans, want 2/0", len(tr.Tokens), len(tr.Spans))
	}
}

func TestAssembleMalformedStreams(t *testing.T) {
	cases := []struct {
		name    string
		records []Record
		errHint string
	}{
		{"event before inject", []Record{pkt(1, core.EvEnqueue, 1)}, "before its injection"},
		{"duplicate inject", []Record{pkt(1, core.EvInject, 1), pkt(2, core.EvInject, 1)}, "injected twice"},
		{"not chronological", []Record{pkt(5, core.EvInject, 1), pkt(3, core.EvEnqueue, 1)}, "not chronological"},
		{"negative cycle", []Record{pkt(-1, core.EvInject, 1)}, "negative cycle"},
		{"accept before launch", []Record{pkt(0, core.EvInject, 1), pkt(1, core.EvEnqueue, 1), pkt(2, core.EvAccept, 1)}, "accept for enqueued"},
		{"nack without drop", []Record{pkt(0, core.EvInject, 1), pkt(1, core.EvEnqueue, 1), pkt(2, core.EvHeadReady, 1), pkt(3, core.EvLaunch, 1), pkt(4, core.EvNack, 1)}, "nack for in-flight"},
		{"meta with packet type", []Record{{Cycle: 0, Type: core.EvLaunch, Meta: true}}, "meta record"},
		{"packet with meta type", []Record{pkt(0, core.EvTokenCapture, 1)}, "meta event type"},
		{"delivery before event", []Record{pkt(0, core.EvInject, 1), deliver(5, 1, 4)}, "delivered at 4 before"},
		{"setaside exit unentered", []Record{pkt(0, core.EvInject, 1), pkt(1, core.EvSetasideExit, 1)}, "setaside-exit"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.records)
			if err == nil {
				t.Fatal("malformed stream assembled without error")
			}
			if !strings.Contains(err.Error(), c.errHint) {
				t.Fatalf("error %q does not mention %q", err, c.errHint)
			}
		})
	}
}

func TestAggregate(t *testing.T) {
	unmeasured := pkt(0, core.EvInject, 1)
	unmeasured.Measured = false
	tr := mustAssemble(t, []Record{
		unmeasured,
		pkt(2, core.EvEnqueue, 1),
		pkt(3, core.EvHeadReady, 1),
		pkt(5, core.EvLaunch, 1),
		pkt(9, core.EvAccept, 1),
		deliver(10, 1, 11),
		pkt(12, core.EvInject, 2),
		deliver(14, 2, 15),
	})
	all := Aggregate(tr, false)
	if all.Spans != 2 || all.Local != 1 || all.Remote() != 1 {
		t.Fatalf("aggregate spans=%d local=%d, want 2/1", all.Spans, all.Local)
	}
	if all.Total != 11+3 {
		t.Fatalf("aggregate total %d, want 14", all.Total)
	}
	if got := all.Phases[PhaseTokenWait]; got != 2 {
		t.Fatalf("token-wait cycles %d, want 2", got)
	}
	measured := Aggregate(tr, true)
	if measured.Spans != 1 || measured.Local != 1 {
		t.Fatalf("measured-only spans=%d local=%d, want 1/1", measured.Spans, measured.Local)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	records := []Record{
		pkt(10, core.EvInject, 1),
		pkt(12, core.EvEnqueue, 1),
		{Cycle: 13, Type: core.EvTokenCapture, Meta: true, Aux: 1<<40 | 5, DeliveredAt: -1},
		deliver(20, 1, 21),
	}
	data := EncodeRecords(records)
	if len(data) != len(records)*recordSize {
		t.Fatalf("encoded %d bytes, want %d", len(data), len(records)*recordSize)
	}
	back, err := DecodeRecords(data)
	if err != nil {
		t.Fatalf("DecodeRecords: %v", err)
	}
	if len(back) != len(records) {
		t.Fatalf("decoded %d records, want %d", len(back), len(records))
	}
	for i := range records {
		if back[i] != records[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, back[i], records[i])
		}
	}
	if _, err := DecodeRecords(data[:recordSize-1]); err == nil {
		t.Fatal("truncated frame decoded without error")
	}
	bad := append([]byte(nil), data...)
	bad[1] = 0xff // unknown flag bits
	if _, err := DecodeRecords(bad); err == nil {
		t.Fatal("unknown flags decoded without error")
	}
}

func TestExporters(t *testing.T) {
	tr := mustAssemble(t, []Record{
		pkt(0, core.EvInject, 1),
		pkt(2, core.EvEnqueue, 1),
		pkt(3, core.EvHeadReady, 1),
		pkt(5, core.EvLaunch, 1),
		{Cycle: 5, Type: core.EvTokenCapture, Meta: true, Aux: 42, DeliveredAt: -1},
		pkt(9, core.EvAccept, 1),
		deliver(10, 1, 11),
	})
	var chrome bytes.Buffer
	if err := WriteChromeTrace(&chrome, tr); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	out := chrome.String()
	for _, want := range []string{`"ph":"X"`, `"name":"token-wait"`, `"name":"token-capture"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome trace missing %s:\n%s", want, out)
		}
	}
	var flame bytes.Buffer
	if err := WriteFlame(&flame, tr, "test"); err != nil {
		t.Fatalf("WriteFlame: %v", err)
	}
	if !strings.Contains(flame.String(), "test;remote;flight 4") {
		t.Fatalf("flame output missing flight line:\n%s", flame.String())
	}
}
