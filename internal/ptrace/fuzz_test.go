package ptrace

import (
	"testing"

	"photon/internal/core"
)

// corpusSeeds are the well-formed streams seeding the fuzzer (also
// checked in under testdata/fuzz/FuzzAssemble, regenerated with
// `go run gen_corpus.go`): one per protocol shape, so mutation starts
// from every grammar branch rather than from noise.
func corpusSeeds() [][]Record {
	return [][]Record{
		// Clean remote delivery.
		{
			pktR(10, core.EvInject, 1),
			pktR(12, core.EvEnqueue, 1),
			pktR(15, core.EvHeadReady, 1),
			pktR(20, core.EvLaunch, 1),
			pktR(28, core.EvAccept, 1),
			deliverR(30, 1, 31),
			pktR(36, core.EvAck, 1),
		},
		// NACK and retransmission with setaside residency.
		{
			pktR(0, core.EvInject, 4),
			pktR(2, core.EvEnqueue, 4),
			pktR(3, core.EvHeadReady, 4),
			pktR(4, core.EvLaunch, 4),
			pktR(4, core.EvSetasideEnter, 4),
			pktR(10, core.EvDrop, 4),
			pktR(16, core.EvNack, 4),
			pktR(18, core.EvLaunch, 4),
			pktR(24, core.EvAccept, 4),
			deliverR(25, 4, 26),
			pktR(30, core.EvAck, 4),
			pktR(30, core.EvSetasideExit, 4),
		},
		// Circulation loops.
		{
			pktR(0, core.EvInject, 2),
			pktR(2, core.EvEnqueue, 2),
			pktR(2, core.EvHeadReady, 2),
			pktR(3, core.EvLaunch, 2),
			pktR(9, core.EvReinject, 2),
			pktR(73, core.EvAccept, 2),
			deliverR(74, 2, 75),
		},
		// Local delivery plus token meta traffic.
		{
			{Cycle: 3, Type: core.EvTokenCapture, Meta: true, Aux: 1<<32 | 5, DeliveredAt: -1},
			pktR(5, core.EvInject, 8),
			deliverR(7, 8, 8),
			{Cycle: 9, Type: core.EvTokenRelease, Meta: true, Aux: 1<<32 | 5, DeliveredAt: -1},
		},
		// Fault-touched packet (lenient path).
		{
			pktR(0, core.EvInject, 6),
			pktR(2, core.EvEnqueue, 6),
			pktR(3, core.EvHeadReady, 6),
			pktR(4, core.EvLaunch, 6),
			pktR(40, core.EvTimeout, 6),
			pktR(41, core.EvLaunch, 6),
			pktR(47, core.EvAccept, 6),
			deliverR(48, 6, 49),
		},
	}
}

func pktR(cycle int64, t core.EventType, id uint64) Record {
	return Record{Cycle: cycle, Type: t, ID: id, Src: 3, Dst: 7, Measured: true, DeliveredAt: -1}
}

func deliverR(cycle int64, id uint64, deliveredAt int64) Record {
	r := pktR(cycle, core.EvDeliver, id)
	r.DeliveredAt = deliveredAt
	return r
}

// FuzzAssemble fuzzes the decode→assemble pipeline: arbitrary bytes must
// either fail to decode, fail to assemble with an error, or produce
// spans that pass Validate. Panics (and invariant-violating spans) are
// the failure mode being hunted.
func FuzzAssemble(f *testing.F) {
	for _, seed := range corpusSeeds() {
		f.Add(EncodeRecords(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		records, err := DecodeRecords(data)
		if err != nil {
			return
		}
		tr, err := Assemble(records)
		if err != nil {
			return
		}
		for _, s := range tr.Spans {
			if err := s.Validate(); err != nil {
				t.Fatalf("assembled span violates invariants: %v", err)
			}
		}
		// Round-trip: a decodable stream re-encodes to the same bytes.
		if got := EncodeRecords(records); !equalBytes(got, data) {
			t.Fatalf("re-encoded stream differs from input")
		}
	})
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
