package phys

import "fmt"

// WavelengthUse labels what a wavelength carries.
type WavelengthUse int

// Wavelength roles.
const (
	UseData WavelengthUse = iota
	UseToken
	UseHandshake
)

func (u WavelengthUse) String() string {
	switch u {
	case UseData:
		return "data"
	case UseToken:
		return "token"
	case UseHandshake:
		return "handshake"
	default:
		return "use?"
	}
}

// WavelengthAssignment maps one wavelength slot of one waveguide to its
// role: which channel (home node) and bit position it carries, or which
// node's token/handshake signal.
type WavelengthAssignment struct {
	Waveguide  int
	Wavelength int // 0..WavelengthsPerWaveguide-1 within the waveguide
	Use        WavelengthUse
	// Channel is the owning home node (data: the reader; token/handshake:
	// the home that emits/answers on it).
	Channel int
	// Bit is the data bit position within the flit (data use only).
	Bit int
}

// AllocationPlan is the complete DWDM layout for a scheme on a shape: the
// physical design document Table I's waveguide counts summarise.
type AllocationPlan struct {
	Shape       NetworkShape
	Scheme      string
	Assignments []WavelengthAssignment
	// Waveguides is the total number of waveguides used.
	Waveguides int
}

// PlanWavelengths lays out every wavelength of a scheme's interconnect:
// data channels packed 64 wavelengths to a waveguide, the token
// wavelength(s) for every home on a shared token waveguide, and (for
// handshake schemes) one answer wavelength per home on the handshake
// waveguide. It errors if a scheme's signalling cannot fit the DWDM limit
// — e.g. more homes than wavelengths on the shared waveguides.
func PlanWavelengths(shape NetworkShape, hw SchemeHardware) (*AllocationPlan, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	plan := &AllocationPlan{Shape: shape, Scheme: hw.Name}

	// Data: channel h occupies FlitBits consecutive wavelength slots.
	wg := 0
	slot := 0
	for h := 0; h < shape.Nodes; h++ {
		for bit := 0; bit < shape.FlitBits; bit++ {
			plan.Assignments = append(plan.Assignments, WavelengthAssignment{
				Waveguide: wg, Wavelength: slot, Use: UseData, Channel: h, Bit: bit,
			})
			slot++
			if slot == WavelengthsPerWaveguide {
				slot, wg = 0, wg+1
			}
		}
	}
	if slot != 0 {
		wg++
		slot = 0
	}

	// Token waveguide: each home needs one token wavelength (plus credit
	// payload wavelengths for Token Channel). All homes share waveguides.
	perHome := 1 + hw.TokenCreditBits
	tokenSlots := shape.Nodes * perHome
	tokenWGs := (tokenSlots + WavelengthsPerWaveguide - 1) / WavelengthsPerWaveguide
	if tokenWGs > 1 && hw.TokenCreditBits == 0 && shape.Nodes > WavelengthsPerWaveguide {
		return nil, fmt.Errorf("phys: %d homes exceed the %d-wavelength token waveguide", shape.Nodes, WavelengthsPerWaveguide)
	}
	for h := 0; h < shape.Nodes; h++ {
		for k := 0; k < perHome; k++ {
			idx := h*perHome + k
			plan.Assignments = append(plan.Assignments, WavelengthAssignment{
				Waveguide:  wg + idx/WavelengthsPerWaveguide,
				Wavelength: idx % WavelengthsPerWaveguide,
				Use:        UseToken,
				Channel:    h,
				Bit:        k,
			})
		}
	}
	wg += tokenWGs

	// Handshake waveguide: one wavelength per home (§IV-C's single bit).
	if hw.Handshake {
		if shape.Nodes > WavelengthsPerWaveguide {
			return nil, fmt.Errorf("phys: %d homes exceed the %d-wavelength handshake waveguide", shape.Nodes, WavelengthsPerWaveguide)
		}
		for h := 0; h < shape.Nodes; h++ {
			plan.Assignments = append(plan.Assignments, WavelengthAssignment{
				Waveguide: wg, Wavelength: h, Use: UseHandshake, Channel: h,
			})
		}
		wg++
	}

	plan.Waveguides = wg
	return plan, nil
}

// Validate checks the plan's physical consistency: no waveguide carries
// two signals on the same wavelength and no slot exceeds the DWDM limit.
func (p *AllocationPlan) Validate() error {
	seen := map[[2]int]WavelengthUse{}
	for _, a := range p.Assignments {
		if a.Wavelength < 0 || a.Wavelength >= WavelengthsPerWaveguide {
			return fmt.Errorf("phys: wavelength %d outside the DWDM limit", a.Wavelength)
		}
		key := [2]int{a.Waveguide, a.Wavelength}
		if prev, dup := seen[key]; dup {
			return fmt.Errorf("phys: waveguide %d wavelength %d assigned twice (%v and %v)",
				a.Waveguide, a.Wavelength, prev, a.Use)
		}
		seen[key] = a.Use
	}
	return nil
}

// CountByUse tallies assignments per role.
func (p *AllocationPlan) CountByUse() map[WavelengthUse]int {
	out := map[WavelengthUse]int{}
	for _, a := range p.Assignments {
		out[a.Use]++
	}
	return out
}
