// Package phys models the silicon-nanophotonic substrate at the component
// level: wavelengths, waveguides, micro-ring resonators, and the optical
// loss budget that determines laser power.
//
// The model follows the technology assumptions of the paper (and of Corona /
// Firefly / the Vantrease MICRO'09 arbitration work it builds on):
//
//   - dense wavelength division multiplexing (DWDM) with up to 64
//     wavelengths carried per waveguide;
//   - micro-ring resonators used as modulators, detectors and switches, one
//     ring per (wavelength, function, node) combination;
//   - an off-chip laser, with on-chip losses paid in dB along each light
//     path and a non-linearity ceiling of 30 mW per waveguide;
//   - thermal tuning of every ring to hold resonance across a 20 K on-die
//     temperature range at 1 uW per ring per K.
//
// The package is purely analytical — the cycle-accurate behaviour of light
// lives in internal/ring — but it is the ground truth for Table I
// (component budgets) and the static half of Figure 12 (laser and heating
// power).
package phys

import "fmt"

// Technology constants shared across the design (paper §II and §IV-C).
const (
	// WavelengthsPerWaveguide is the DWDM limit assumed by the paper: "an
	// optical waveguide can carry 64 wavelengths".
	WavelengthsPerWaveguide = 64

	// ClockGHz is the system clock of the target CMP (5 GHz on a 400 mm^2
	// die, paper §V-A).
	ClockGHz = 5.0

	// DieAreaMM2 is the die area used for waveguide length estimates.
	DieAreaMM2 = 400.0

	// RoundTripCycles is the optical ring's round-trip time in clock
	// cycles: nanophotonic link traversal spans 1 to 8 cycles depending on
	// sender/receiver distance (paper §V-A), i.e. a full loop is 8 cycles.
	RoundTripCycles = 8

	// EOConversionPS is the total latency of one electrical/optical or
	// optical/electrical conversion (paper §V-A, citing Kapur & Saraswat).
	EOConversionPS = 75.0
)

// NetworkShape describes the macroscopic layout of the interconnect: how
// many nodes share the ring and how wide each data channel is. The paper's
// configuration is 256 cores on 64 nodes (4-way concentration) with
// single-flit packets of 256 bits — Table I's 256 data waveguides and 1024K
// micro-rings pin the channel width down to 4 waveguides x 64 wavelengths.
type NetworkShape struct {
	Nodes        int // nodes attached to the ring (64)
	CoresPerNode int // concentration degree (4)
	FlitBits     int // data channel width in bits = wavelengths (256)
}

// DefaultShape returns the paper's 256-core, 64-node configuration.
func DefaultShape() NetworkShape {
	return NetworkShape{Nodes: 64, CoresPerNode: 4, FlitBits: 256}
}

// Validate reports a descriptive error when the shape is degenerate.
func (s NetworkShape) Validate() error {
	if s.Nodes < 2 {
		return fmt.Errorf("phys: network needs at least 2 nodes, got %d", s.Nodes)
	}
	if s.CoresPerNode < 1 {
		return fmt.Errorf("phys: cores per node must be >= 1, got %d", s.CoresPerNode)
	}
	if s.FlitBits < 1 {
		return fmt.Errorf("phys: flit width must be >= 1 bit, got %d", s.FlitBits)
	}
	return nil
}

// Cores returns the total core count.
func (s NetworkShape) Cores() int { return s.Nodes * s.CoresPerNode }

// DataWaveguidesPerChannel returns how many physical waveguides one MWSR
// data channel occupies: FlitBits wavelengths packed 64 to a waveguide.
func (s NetworkShape) DataWaveguidesPerChannel() int {
	return ceilDiv(s.FlitBits, WavelengthsPerWaveguide)
}

// RingCircumferenceCM estimates the serpentine/loop length of the global
// ring from the die area: a ring hugging the perimeter of a square die of
// the configured area. For the 400 mm^2 die this gives 8 cm, the figure
// commonly used in nanophotonic NoC loss budgets.
func (s NetworkShape) RingCircumferenceCM() float64 {
	side := sqrtMM(DieAreaMM2) // mm
	return 4 * side / 10       // perimeter in cm
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// sqrtMM is a tiny Newton square root so the package stays free of math
// imports it barely needs; inputs are die areas (hundreds of mm^2).
func sqrtMM(x float64) float64 {
	if x <= 0 {
		return 0
	}
	g := x / 2
	for i := 0; i < 40; i++ {
		g = (g + x/g) / 2
	}
	return g
}
