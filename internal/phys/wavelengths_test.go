package phys

import "testing"

func TestPlanWavelengthsDefault(t *testing.T) {
	shape := DefaultShape()
	for _, hw := range StandardSchemes() {
		plan, err := PlanWavelengths(shape, hw)
		if err != nil {
			t.Fatalf("%s: %v", hw.Name, err)
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("%s: %v", hw.Name, err)
		}
		counts := plan.CountByUse()
		if counts[UseData] != shape.Nodes*shape.FlitBits {
			t.Errorf("%s: data wavelengths %d, want %d", hw.Name, counts[UseData], shape.Nodes*shape.FlitBits)
		}
		wantToken := shape.Nodes * (1 + hw.TokenCreditBits)
		if counts[UseToken] != wantToken {
			t.Errorf("%s: token wavelengths %d, want %d", hw.Name, counts[UseToken], wantToken)
		}
		if hw.Handshake && counts[UseHandshake] != shape.Nodes {
			t.Errorf("%s: handshake wavelengths %d, want %d", hw.Name, counts[UseHandshake], shape.Nodes)
		}
		if !hw.Handshake && counts[UseHandshake] != 0 {
			t.Errorf("%s: unexpected handshake wavelengths", hw.Name)
		}
	}
}

// TestPlanMatchesTableI: the plan's waveguide total must equal Table I's
// waveguide columns.
func TestPlanMatchesTableI(t *testing.T) {
	shape := DefaultShape()
	for _, hw := range StandardSchemes() {
		plan, err := PlanWavelengths(shape, hw)
		if err != nil {
			t.Fatal(err)
		}
		inv := ComponentBudget(shape, hw)
		want := inv.DataWaveguides + inv.TokenWaveguides + inv.HandshakeWaveguides
		if plan.Waveguides != want {
			t.Errorf("%s: plan uses %d waveguides, Table I says %d", hw.Name, plan.Waveguides, want)
		}
	}
}

func TestPlanRejectsOversizedRings(t *testing.T) {
	shape := NetworkShape{Nodes: 128, CoresPerNode: 4, FlitBits: 256}
	// 128 homes exceed a 64-wavelength handshake waveguide.
	if _, err := PlanWavelengths(shape, SchemeHardware{Name: "x", Handshake: true}); err == nil {
		t.Fatal("128-home handshake waveguide accepted")
	}
}

func TestPlanValidateCatchesDuplicates(t *testing.T) {
	p := &AllocationPlan{Assignments: []WavelengthAssignment{
		{Waveguide: 0, Wavelength: 3, Use: UseData},
		{Waveguide: 0, Wavelength: 3, Use: UseToken},
	}}
	if err := p.Validate(); err == nil {
		t.Fatal("duplicate slot accepted")
	}
	p2 := &AllocationPlan{Assignments: []WavelengthAssignment{{Wavelength: 99}}}
	if err := p2.Validate(); err == nil {
		t.Fatal("over-limit wavelength accepted")
	}
}

func TestWavelengthUseString(t *testing.T) {
	if UseData.String() != "data" || UseToken.String() != "token" || UseHandshake.String() != "handshake" {
		t.Fatal("labels wrong")
	}
	if WavelengthUse(9).String() != "use?" {
		t.Fatal("unknown label wrong")
	}
}
