package phys

import "fmt"

// LossBudget holds the per-component optical losses (in dB) along a light
// path from laser to photodetector. Defaults follow the published budgets
// used by Corona, Flexishare and the Joshi clos-network study that the
// paper's power model cites.
type LossBudget struct {
	CouplerDB        float64 // fiber-to-chip coupler
	SplitterDB       float64 // power splitting into the distribution tree
	WaveguidePerCMDB float64 // propagation loss per cm
	RingThroughDB    float64 // passing a single off-resonance ring
	ModulatorDB      float64 // insertion loss of the modulator ring
	DropDB           float64 // dropping into the detector ring
	PhotodetectorDB  float64 // detector termination
	// PollTapDB is the partial-drop loss a *polling* tap imposes: a node
	// that may capture a relayed arbitration token keeps its detector ring
	// near resonance every cycle, skimming part of the token's light even
	// when it does not capture. Only the single relayed token of global
	// arbitration pays this at every node per loop — the paper's "schemes
	// with global arbitration ... incur more optical loss [and] consume
	// more laser power" (§V-C).
	PollTapDB float64
}

// DefaultLossBudget returns the loss figures used throughout the
// evaluation.
func DefaultLossBudget() LossBudget {
	return LossBudget{
		CouplerDB:        1.0,
		SplitterDB:       1.2,
		WaveguidePerCMDB: 1.0,
		RingThroughDB:    0.01,
		ModulatorDB:      0.5,
		DropDB:           1.5,
		PhotodetectorDB:  0.1,
		PollTapDB:        0.22,
	}
}

// PolledPathLossDB is PathLossDB plus the polling-tap loss of polledTaps
// actively listening capture rings (the relayed-token path of global
// arbitration).
func (l LossBudget) PolledPathLossDB(lengthCM float64, ringsPassed, polledTaps int) float64 {
	return l.PathLossDB(lengthCM, ringsPassed) + l.PollTapDB*float64(polledTaps)
}

// PathLossDB computes the worst-case dB loss of one wavelength travelling
// the full ring: through the coupler and splitter, the whole waveguide
// length, past ringsPassed off-resonance rings, one modulator, one drop and
// the detector.
func (l LossBudget) PathLossDB(lengthCM float64, ringsPassed int) float64 {
	return l.CouplerDB + l.SplitterDB +
		l.WaveguidePerCMDB*lengthCM +
		l.RingThroughDB*float64(ringsPassed) +
		l.ModulatorDB + l.DropDB + l.PhotodetectorDB
}

// LaserModel converts a loss budget into electrical laser power.
type LaserModel struct {
	Loss LossBudget
	// DetectorSensitivityMW is the minimum optical power that must reach a
	// photodetector (10 uW, paper §V-C citing Flexishare).
	DetectorSensitivityMW float64
	// WallPlugEfficiency is the electrical-to-optical efficiency of the
	// off-chip laser (a conservative 30%).
	WallPlugEfficiency float64
	// NonlinearityLimitMW caps the optical power carried by one waveguide
	// (30 mW at 1 dB loss, paper §V-C).
	NonlinearityLimitMW float64
}

// DefaultLaserModel returns the paper's laser assumptions.
func DefaultLaserModel() LaserModel {
	return LaserModel{
		Loss:                  DefaultLossBudget(),
		DetectorSensitivityMW: 0.010,
		WallPlugEfficiency:    0.30,
		NonlinearityLimitMW:   30.0,
	}
}

// PerWavelengthMW returns the electrical laser power (mW) required for one
// wavelength traversing lengthCM of waveguide past ringsPassed rings, to
// arrive at the detector above sensitivity.
func (m LaserModel) PerWavelengthMW(lengthCM float64, ringsPassed int) (float64, error) {
	lossDB := m.Loss.PathLossDB(lengthCM, ringsPassed)
	optical := m.DetectorSensitivityMW * pow10(lossDB/10)
	if optical > m.NonlinearityLimitMW {
		return 0, fmt.Errorf("phys: required optical power %.2f mW exceeds %.1f mW non-linearity limit (loss %.1f dB)",
			optical, m.NonlinearityLimitMW, lossDB)
	}
	if m.WallPlugEfficiency <= 0 {
		return 0, fmt.Errorf("phys: wall-plug efficiency must be positive")
	}
	return optical / m.WallPlugEfficiency, nil
}

// PolledWavelengthMW is PerWavelengthMW for a wavelength whose path is
// additionally tapped by polledTaps listening rings — the relayed token of
// global arbitration.
func (m LaserModel) PolledWavelengthMW(lengthCM float64, ringsPassed, polledTaps int) (float64, error) {
	lossDB := m.Loss.PolledPathLossDB(lengthCM, ringsPassed, polledTaps)
	optical := m.DetectorSensitivityMW * pow10(lossDB/10)
	if optical > m.NonlinearityLimitMW {
		return 0, fmt.Errorf("phys: polled path needs %.2f mW optical, over the %.1f mW non-linearity limit (loss %.1f dB)",
			optical, m.NonlinearityLimitMW, lossDB)
	}
	if m.WallPlugEfficiency <= 0 {
		return 0, fmt.Errorf("phys: wall-plug efficiency must be positive")
	}
	return optical / m.WallPlugEfficiency, nil
}

// ThermalTuning models the static ring-heating power: every ring is held on
// resonance across a temperature range.
type ThermalTuning struct {
	PerRingPerKelvinUW float64 // 1 uW per ring per K (paper §V-C)
	TemperatureRangeK  float64 // 20 K
}

// DefaultThermalTuning returns the paper's heating assumptions.
func DefaultThermalTuning() ThermalTuning {
	return ThermalTuning{PerRingPerKelvinUW: 1.0, TemperatureRangeK: 20.0}
}

// HeatingWatts returns total tuning power for a ring count.
func (t ThermalTuning) HeatingWatts(rings int) float64 {
	return t.PerRingPerKelvinUW * 1e-6 * t.TemperatureRangeK * float64(rings)
}

// pow10 computes 10^x for the small positive exponents seen in loss budgets
// without importing math; exp/log via the classic range-reduced series would
// be overkill, so this uses repeated squaring on 10^(1/16) steps.
func pow10(x float64) float64 {
	if x <= 0 {
		return 1
	}
	// 10^x = e^(x*ln10); implement expTaylor with range reduction.
	const ln10 = 2.302585092994046
	return expTaylor(x * ln10)
}

func expTaylor(x float64) float64 {
	// Range-reduce so the Taylor series converges quickly.
	n := 0
	for x > 0.5 {
		x /= 2
		n++
	}
	term, sum := 1.0, 1.0
	for i := 1; i < 20; i++ {
		term *= x / float64(i)
		sum += term
	}
	for ; n > 0; n-- {
		sum *= sum
	}
	return sum
}
