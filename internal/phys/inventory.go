package phys

import "fmt"

// ArbitrationKind distinguishes the two optical arbitration styles of the
// paper: a single relayed token (global) versus a stream of per-cycle token
// slots (distributed).
type ArbitrationKind int

const (
	// GlobalArbitration: one token per channel circulates continuously;
	// only one sender owns the channel per round trip (Token Channel, GHS).
	GlobalArbitration ArbitrationKind = iota
	// DistributedArbitration: the home node emits a token every cycle and
	// the channel is wave-pipelined into back-to-back segments (Token
	// Slot, DHS).
	DistributedArbitration
)

func (k ArbitrationKind) String() string {
	switch k {
	case GlobalArbitration:
		return "global"
	case DistributedArbitration:
		return "distributed"
	default:
		return fmt.Sprintf("ArbitrationKind(%d)", int(k))
	}
}

// SchemeHardware captures the hardware-relevant properties of an
// arbitration/flow-control scheme — exactly the information needed to fill
// one row of Table I and to feed the power model.
type SchemeHardware struct {
	Name        string
	Arbitration ArbitrationKind
	// Handshake is true when the scheme needs an ACK/NACK waveguide
	// (GHS, DHS; not Token Channel/Slot, not DHS with circulation).
	Handshake bool
	// Circulation is true when home nodes reinject packets, which requires
	// modulators (not just detectors) on each home's own data channel.
	Circulation bool
	// TokenCreditBits is the width of the arbitration token payload:
	// Token Channel piggybacks a credit count; handshake tokens carry
	// nothing beyond their presence (one wavelength).
	TokenCreditBits int
}

// Inventory is one row of Table I: the optical component budget of a scheme
// on a given network shape.
type Inventory struct {
	Scheme              string
	DataWaveguides      int
	TokenWaveguides     int
	HandshakeWaveguides int
	MicroRings          int
}

// ComponentBudget derives the full optical component inventory for a scheme,
// reproducing the arithmetic of paper §IV-C:
//
//   - data: every node can write every other node's channel, so each of the
//     Nodes channels carries FlitBits wavelengths with one modulator ring
//     per writer and one detector ring per wavelength at the home node —
//     the paper counts 64 rings per wavelength (one per node: 63 writers +
//     1 reader), i.e. Nodes * Nodes * FlitBits rings in total (1024K for
//     the 64-node, 256-bit configuration);
//   - token: one waveguide; each channel's token occupies one wavelength
//     with rings at every node (capture/release), Nodes * Nodes rings
//     (counted inside the data figure by the paper's 1024K round number —
//     we follow the paper and fold token rings into the data budget);
//   - handshake: one extra waveguide (64 wavelengths, one per home) with a
//     modulator at the home and detectors at each sender — 64 rings per
//     wavelength, 4K total, the paper's "0.4% overhead";
//   - circulation: home nodes additionally modulate their own channel:
//     FlitBits modulators per home, 16K rings total, "1.5%".
func ComponentBudget(shape NetworkShape, hw SchemeHardware) Inventory {
	n := shape.Nodes
	inv := Inventory{
		Scheme:          hw.Name,
		DataWaveguides:  n * shape.DataWaveguidesPerChannel(),
		TokenWaveguides: 1,
		// Data rings: one ring per (channel, node, wavelength).
		MicroRings: n * n * shape.FlitBits,
	}
	if hw.Handshake {
		inv.HandshakeWaveguides = 1
		// One wavelength per home; modulator at home + detector at every
		// other node = Nodes rings per wavelength.
		inv.MicroRings += n * n
	}
	if hw.Circulation {
		// Reinjection modulators: FlitBits rings at each home node.
		inv.MicroRings += n * shape.FlitBits
	}
	return inv
}

// Overhead returns the fractional micro-ring overhead of inv relative to a
// baseline inventory (e.g. GHS vs Token Slot gives the paper's 0.4%).
func (inv Inventory) Overhead(base Inventory) float64 {
	if base.MicroRings == 0 {
		return 0
	}
	return float64(inv.MicroRings-base.MicroRings) / float64(base.MicroRings)
}

// StandardSchemes returns the four Table I rows in paper order.
func StandardSchemes() []SchemeHardware {
	return []SchemeHardware{
		{Name: "Token Slot", Arbitration: DistributedArbitration},
		{Name: "GHS", Arbitration: GlobalArbitration, Handshake: true},
		{Name: "DHS", Arbitration: DistributedArbitration, Handshake: true},
		{Name: "DHS-cir", Arbitration: DistributedArbitration, Circulation: true},
	}
}

// TableI computes the complete Table I for a network shape.
func TableI(shape NetworkShape) []Inventory {
	rows := make([]Inventory, 0, 4)
	for _, hw := range StandardSchemes() {
		rows = append(rows, ComponentBudget(shape, hw))
	}
	return rows
}
