package phys

import (
	"math"
	"testing"
)

func TestDefaultShape(t *testing.T) {
	s := DefaultShape()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Cores() != 256 {
		t.Fatalf("Cores = %d, want 256", s.Cores())
	}
	if s.DataWaveguidesPerChannel() != 4 {
		t.Fatalf("DataWaveguidesPerChannel = %d, want 4 (256 bits / 64 lambda)", s.DataWaveguidesPerChannel())
	}
}

func TestShapeValidation(t *testing.T) {
	cases := []NetworkShape{
		{Nodes: 1, CoresPerNode: 4, FlitBits: 256},
		{Nodes: 64, CoresPerNode: 0, FlitBits: 256},
		{Nodes: 64, CoresPerNode: 4, FlitBits: 0},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid shape accepted: %+v", i, s)
		}
	}
}

func TestRingCircumference(t *testing.T) {
	// 400 mm^2 die -> 20 mm side -> 80 mm = 8 cm perimeter loop.
	got := DefaultShape().RingCircumferenceCM()
	if math.Abs(got-8.0) > 0.01 {
		t.Fatalf("circumference %.3f cm, want 8", got)
	}
}

// TestTableIMatchesPaper pins the component budget to the paper's Table I
// exactly: 256 data waveguides, 1 token waveguide, 0/1 handshake
// waveguides, and 1024K / 1028K / 1028K / 1040K micro-rings.
func TestTableIMatchesPaper(t *testing.T) {
	rows := TableI(DefaultShape())
	want := []struct {
		scheme  string
		dataWG  int
		tokenWG int
		hsWG    int
		ringsK  int
	}{
		{"Token Slot", 256, 1, 0, 1024},
		{"GHS", 256, 1, 1, 1028},
		{"DHS", 256, 1, 1, 1028},
		{"DHS-cir", 256, 1, 0, 1040},
	}
	if len(rows) != len(want) {
		t.Fatalf("TableI rows = %d, want %d", len(rows), len(want))
	}
	for i, w := range want {
		r := rows[i]
		if r.Scheme != w.scheme || r.DataWaveguides != w.dataWG ||
			r.TokenWaveguides != w.tokenWG || r.HandshakeWaveguides != w.hsWG ||
			r.MicroRings != w.ringsK*1024 {
			t.Errorf("row %d: got %+v, want %+v", i, r, w)
		}
	}
}

// TestHandshakeOverheadIsTheClaimed0_4Percent checks the paper's headline
// hardware claim: the handshake waveguide costs 0.4% extra micro-rings,
// circulation about 1.5%.
func TestHandshakeOverheadIsTheClaimed0_4Percent(t *testing.T) {
	rows := TableI(DefaultShape())
	base := rows[0]
	if pct := 100 * rows[1].Overhead(base); math.Abs(pct-0.39) > 0.05 {
		t.Errorf("GHS ring overhead %.2f%%, want about 0.4%%", pct)
	}
	if pct := 100 * rows[3].Overhead(base); math.Abs(pct-1.56) > 0.1 {
		t.Errorf("DHS-cir ring overhead %.2f%%, want about 1.5%%", pct)
	}
}

func TestComponentBudgetScalesQuadratically(t *testing.T) {
	small := ComponentBudget(NetworkShape{Nodes: 32, CoresPerNode: 4, FlitBits: 256},
		SchemeHardware{Name: "x", Arbitration: DistributedArbitration})
	big := ComponentBudget(NetworkShape{Nodes: 64, CoresPerNode: 4, FlitBits: 256},
		SchemeHardware{Name: "x", Arbitration: DistributedArbitration})
	if big.MicroRings != 4*small.MicroRings {
		t.Fatalf("doubling nodes should 4x data rings: %d vs %d", big.MicroRings, small.MicroRings)
	}
}

func TestArbitrationKindString(t *testing.T) {
	if GlobalArbitration.String() != "global" || DistributedArbitration.String() != "distributed" {
		t.Fatal("ArbitrationKind labels wrong")
	}
	if ArbitrationKind(9).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestPathLossComposition(t *testing.T) {
	l := DefaultLossBudget()
	base := l.PathLossDB(0, 0)
	withWG := l.PathLossDB(8, 0)
	if math.Abs((withWG-base)-8.0) > 1e-9 {
		t.Fatalf("8 cm of waveguide should add 8 dB, added %.3f", withWG-base)
	}
	withRings := l.PathLossDB(0, 100)
	if math.Abs((withRings-base)-1.0) > 1e-9 {
		t.Fatalf("100 rings should add 1 dB, added %.3f", withRings-base)
	}
	polled := l.PolledPathLossDB(0, 0, 10)
	if math.Abs((polled-base)-10*l.PollTapDB) > 1e-9 {
		t.Fatalf("10 polled taps should add %.2f dB, added %.3f", 10*l.PollTapDB, polled-base)
	}
}

func TestLaserPowerMonotonicInLoss(t *testing.T) {
	m := DefaultLaserModel()
	short, err := m.PerWavelengthMW(2, 64)
	if err != nil {
		t.Fatal(err)
	}
	long, err := m.PerWavelengthMW(8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if long <= short {
		t.Fatalf("longer waveguide should need more laser: %.4f vs %.4f mW", long, short)
	}
}

func TestLaserNonlinearityLimit(t *testing.T) {
	m := DefaultLaserModel()
	// An absurdly long path must trip the 30 mW waveguide limit.
	if _, err := m.PerWavelengthMW(40, 100000); err == nil {
		t.Fatal("40 cm + 100k rings did not exceed the non-linearity limit")
	}
}

func TestThermalTuning(t *testing.T) {
	th := DefaultThermalTuning()
	// 1 uW/ring/K x 20 K x 1M rings = 20 W.
	got := th.HeatingWatts(1 << 20)
	if math.Abs(got-20.97) > 0.05 {
		t.Fatalf("heating for 1M rings = %.3f W, want about 20.97", got)
	}
}

func TestPow10Accuracy(t *testing.T) {
	for _, x := range []float64{0, 0.1, 0.5, 1, 1.294, 2, 2.9, 3.5} {
		got := pow10(x)
		want := math.Pow(10, x)
		if math.Abs(got-want)/want > 1e-6 {
			t.Errorf("pow10(%.3f) = %.9g, want %.9g", x, got, want)
		}
	}
}

func TestSqrtMMAccuracy(t *testing.T) {
	for _, x := range []float64{1, 4, 100, 400, 576} {
		got := sqrtMM(x)
		want := math.Sqrt(x)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("sqrtMM(%.0f) = %.12f, want %.12f", x, got, want)
		}
	}
	if sqrtMM(0) != 0 || sqrtMM(-1) != 0 {
		t.Error("sqrtMM of non-positive should be 0")
	}
}
