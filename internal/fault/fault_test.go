package fault

import (
	"math"
	"strings"
	"testing"
)

func validConfig() Config {
	return Config{
		Enabled: true,
		Warmup:  10,
		Seed:    42,
		Token:   ClassConfig{Rate: 0.1},
		Pulse:   ClassConfig{Rate: 0.05, Burst: 3},
		Data:    ClassConfig{Rate: 0.02},
		Stall:   ClassConfig{Rate: 0.01, Burst: 4},
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"nan rate", func(c *Config) { c.Token.Rate = math.NaN() }, "finite"},
		{"pos inf rate", func(c *Config) { c.Pulse.Rate = math.Inf(1) }, "finite"},
		{"neg inf rate", func(c *Config) { c.Data.Rate = math.Inf(-1) }, "finite"},
		{"negative rate", func(c *Config) { c.Stall.Rate = -0.1 }, "[0, 1]"},
		{"rate above one", func(c *Config) { c.Token.Rate = 1.5 }, "[0, 1]"},
		{"negative burst", func(c *Config) { c.Pulse.Burst = -1 }, ">= 0"},
		{"huge burst", func(c *Config) { c.Data.Burst = MaxBurst + 1 }, "structural cap"},
		{"negative warmup", func(c *Config) { c.Warmup = -1 }, "warmup"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := validConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if err := validConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	// Boundary rates are legal.
	edge := validConfig()
	edge.Token.Rate, edge.Pulse.Rate = 0, 1
	if err := edge.Validate(); err != nil {
		t.Fatalf("boundary rates rejected: %v", err)
	}
}

func TestNewInjectorPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	bad := validConfig()
	bad.Token.Rate = 2
	expectPanic("invalid config", func() { NewInjector(bad, 8) })
	expectPanic("zero nodes", func() { NewInjector(validConfig(), 0) })
}

// TestDeterminism: two injectors built from the same (config, node count)
// must produce the identical fault schedule, and the schedule of one class
// must be independent of whether the other classes are consulted (each
// (class, element) pair owns a private RNG stream).
func TestDeterminism(t *testing.T) {
	const nodes, cycles = 8, 2000
	schedule := func(in *Injector, interleave bool) []bool {
		var s []bool
		for now := int64(0); now < cycles; now++ {
			in.BeginCycle(now, nil)
			for ch := 0; ch < nodes; ch++ {
				s = append(s, in.KillToken(ch, now))
				if interleave {
					// Extra draws on other classes must not disturb tokens.
					in.KillPulse(ch, now)
					in.KillData(ch, now)
				}
			}
		}
		return s
	}
	a := schedule(NewInjector(validConfig(), nodes), false)
	b := schedule(NewInjector(validConfig(), nodes), true)
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	fires := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at draw %d", i)
		}
		if a[i] {
			fires++
		}
	}
	if fires == 0 {
		t.Fatal("schedule never fired; the test proves nothing")
	}
}

func TestWarmupGuard(t *testing.T) {
	cfg := validConfig()
	cfg.Warmup = 500
	cfg.Token.Rate = 1 // would otherwise fire on every draw
	in := NewInjector(cfg, 4)
	for now := int64(0); now < 500; now++ {
		for ch := 0; ch < 4; ch++ {
			if in.KillToken(ch, now) {
				t.Fatalf("token fault fired at cycle %d, inside the warmup guard", now)
			}
		}
	}
	if !in.KillToken(0, 500) {
		t.Fatal("rate-1 token fault did not fire at the first post-warmup opportunity")
	}
	if got := in.Counts()[TokenLoss]; got != 1 {
		t.Fatalf("token count = %d, want 1", got)
	}
}

// TestBurst: a trigger with Burst n must kill exactly n consecutive
// opportunities of the same element.
func TestBurst(t *testing.T) {
	cfg := Config{Enabled: true, Seed: 7, Data: ClassConfig{Rate: 0.01, Burst: 5}}
	in := NewInjector(cfg, 1)
	run := 0
	var runs []int
	for now := int64(0); now < 100_000; now++ {
		if in.KillData(0, now) {
			run++
			continue
		}
		if run > 0 {
			runs = append(runs, run)
			run = 0
		}
	}
	if len(runs) == 0 {
		t.Fatal("no bursts fired")
	}
	for _, r := range runs {
		// Runs shorter than Burst are impossible; longer ones only occur
		// when a fresh trigger lands inside or adjacent to a burst.
		if r < 5 {
			t.Fatalf("burst of length %d, want >= 5", r)
		}
	}
}

func TestZeroRateDrawsNothing(t *testing.T) {
	// A zero-rate class must consume no randomness: an injector that only
	// ever answers false must leave its counters at zero, and Bernoulli
	// must never be consulted (checked indirectly — the token stream of a
	// rate-0 run must match a fresh, untouched injector's).
	cfg := Config{Enabled: true, Seed: 3}
	in := NewInjector(cfg, 2)
	for now := int64(0); now < 1000; now++ {
		in.BeginCycle(now, nil)
		for ch := 0; ch < 2; ch++ {
			if in.KillToken(ch, now) || in.KillPulse(ch, now) || in.KillData(ch, now) || in.Stalled(ch) {
				t.Fatalf("zero-rate injector fired at cycle %d", now)
			}
		}
	}
	if in.Total() != 0 {
		t.Fatalf("zero-rate injector counted %d faults", in.Total())
	}
}

// TestStallBurstAndCallback: drift onsets last Burst cycles, and onStall
// fires once per onset (not once per stalled cycle).
func TestStallBurstAndCallback(t *testing.T) {
	cfg := Config{Enabled: true, Seed: 9, Stall: ClassConfig{Rate: 0.01, Burst: 6}}
	in := NewInjector(cfg, 3)
	onsets := 0
	stalledCycles := 0
	for now := int64(0); now < 50_000; now++ {
		in.BeginCycle(now, func(node int) {
			if node < 0 || node >= 3 {
				t.Fatalf("onStall reported node %d", node)
			}
			onsets++
		})
		for n := 0; n < 3; n++ {
			if in.Stalled(n) {
				stalledCycles++
			}
		}
	}
	if onsets == 0 {
		t.Fatal("no stalls fired")
	}
	if got := in.Counts()[NodeStall]; int(got) != onsets {
		t.Fatalf("counts[NodeStall] = %d but onStall fired %d times", got, onsets)
	}
	// Each onset stalls the node for exactly Burst cycles (back-to-back
	// triggers extend the run, so >= is the tight bound cheap to assert).
	if stalledCycles < onsets*6 {
		t.Fatalf("%d onsets stalled only %d node-cycles, want >= %d", onsets, stalledCycles, onsets*6)
	}
}

func TestClassRoundTrip(t *testing.T) {
	cfg := Config{}
	for _, cl := range Classes() {
		want := ClassConfig{Rate: 0.25, Burst: int(cl) + 1}
		cfg = cfg.SetClass(cl, want)
		if got := cfg.Class(cl); got != want {
			t.Fatalf("%s round-trip: got %+v, want %+v", cl, got, want)
		}
	}
	for _, cl := range Classes() {
		if cl.String() == "" || strings.HasPrefix(cl.String(), "Class(") {
			t.Fatalf("class %d has no name", int(cl))
		}
	}
}
