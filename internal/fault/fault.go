// Package fault is the optical fault-injection subsystem: a deterministic,
// seed-derived source of the failures a real silicon-photonic substrate
// suffers and a perfect simulator otherwise hides — arbitration tokens that
// die in the waveguide, handshake ACK/NACK pulses that never reach their
// sender, data flits corrupted in flight, and transient per-node resonator
// drift that takes a node's E/O tuning off-channel for a burst of cycles.
//
// Corruption is modelled as detected loss: optical links protect tokens,
// pulses and flits with coding, so a corrupted unit is recognised and
// discarded by its receiver rather than mis-acted-upon. (Undetected
// corruption would silently forge protocol state and is outside the fault
// model; DESIGN.md discusses the boundary.) A "kill" therefore covers both
// the drop and the corrupt case of each class.
//
// Determinism contract: every fault class of every element (channel or
// node) draws from a private RNG stream derived via sim.DeriveSeed, so a
// given (seed, config) pair produces the identical fault schedule on every
// run regardless of what the rest of the simulator does with its own
// generators — runs under fault injection stay digest-reproducible, and a
// zero-rate class consumes no randomness at all (the recovery machinery is
// provably inert when no faults fire).
package fault

import (
	"fmt"
	"math"

	"photon/internal/sim"
)

// Class identifies one fault class.
type Class int

const (
	// TokenLoss kills an arbitration token: a circulating global token
	// vanishes from the loop, or a distributed slot token dies as it leaves
	// home (its credit, if any, stranded until the watchdog reclaims it).
	TokenLoss Class = iota
	// PulseLoss kills a handshake ACK/NACK pulse in flight; the sender
	// never hears the answer and must recover by retransmit timeout.
	PulseLoss
	// DataLoss corrupts a data flit in flight; the home node discards the
	// unreadable arrival and — the header being unreadable too — cannot
	// even NACK it.
	DataLoss
	// NodeStall is transient resonator drift: the node's modulators fall
	// off-channel for a burst of cycles, during which it can neither
	// capture tokens nor launch packets. Nothing is lost, only delayed.
	NodeStall

	// NumClasses is the number of fault classes.
	NumClasses
)

func (c Class) String() string {
	switch c {
	case TokenLoss:
		return "token-loss"
	case PulseLoss:
		return "pulse-loss"
	case DataLoss:
		return "data-loss"
	case NodeStall:
		return "node-stall"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Classes lists every fault class in presentation order.
func Classes() []Class { return []Class{TokenLoss, PulseLoss, DataLoss, NodeStall} }

// MaxBurst is the structural cap on a class's burst length, mirroring the
// depth caps of core.Config: far above anything physical, present so a
// malformed sweep point fails fast in Validate instead of wedging a run
// (the fuzz target drives Validate with adversarial values).
const MaxBurst = 1 << 20

// ClassConfig configures one fault class.
type ClassConfig struct {
	// Rate is the per-opportunity Bernoulli fault probability in [0, 1].
	// An "opportunity" is class-specific: each cycle a free global token
	// circulates (or each slot-token emission), each delivered handshake
	// pulse, each data-flit arrival, each node-cycle.
	Rate float64
	// Burst is how many consecutive opportunities of the same element one
	// trigger affects (resonator drift and thermal transients come in
	// bursts, not single cycles). 0 and 1 both mean single-opportunity
	// faults; for NodeStall the burst is the stall length in cycles.
	Burst int
}

func (c ClassConfig) validate(name string) error {
	if math.IsNaN(c.Rate) || math.IsInf(c.Rate, 0) {
		return fmt.Errorf("fault: %s rate must be a finite number, got %g", name, c.Rate)
	}
	if c.Rate < 0 || c.Rate > 1 {
		return fmt.Errorf("fault: %s rate must be in [0, 1], got %g", name, c.Rate)
	}
	if c.Burst < 0 {
		return fmt.Errorf("fault: %s burst must be >= 0, got %d", name, c.Burst)
	}
	if c.Burst > MaxBurst {
		return fmt.Errorf("fault: %s burst %d exceeds the structural cap %d", name, c.Burst, MaxBurst)
	}
	return nil
}

// Config is the fault model of one run. The zero value (Enabled false)
// leaves the optical substrate perfect.
type Config struct {
	// Enabled turns the injector on; when false the other fields are inert.
	Enabled bool
	// Warmup is the guard window: no fault fires before this cycle, so
	// runs can reach steady state (and tests can script exact fault
	// windows) before the substrate degrades.
	Warmup int64
	// Seed drives the fault streams. 0 means "derive from the network
	// seed", keeping single-seed runs single-knob reproducible.
	Seed uint64

	// Per-class configuration.
	Token ClassConfig
	Pulse ClassConfig
	Data  ClassConfig
	Stall ClassConfig
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	if c.Warmup < 0 {
		return fmt.Errorf("fault: warmup guard must be >= 0, got %d", c.Warmup)
	}
	if err := c.Token.validate("token"); err != nil {
		return err
	}
	if err := c.Pulse.validate("pulse"); err != nil {
		return err
	}
	if err := c.Data.validate("data"); err != nil {
		return err
	}
	return c.Stall.validate("stall")
}

// Class returns the configuration of one class.
func (c Config) Class(cl Class) ClassConfig {
	switch cl {
	case TokenLoss:
		return c.Token
	case PulseLoss:
		return c.Pulse
	case DataLoss:
		return c.Data
	case NodeStall:
		return c.Stall
	default:
		panic(fmt.Sprintf("fault: Class of invalid class %d", int(cl)))
	}
}

// SetClass returns a copy of the config with one class replaced — the
// sweep helper the chaos battery uses to light up classes one at a time.
func (c Config) SetClass(cl Class, cc ClassConfig) Config {
	switch cl {
	case TokenLoss:
		c.Token = cc
	case PulseLoss:
		c.Pulse = cc
	case DataLoss:
		c.Data = cc
	case NodeStall:
		c.Stall = cc
	default:
		panic(fmt.Sprintf("fault: SetClass of invalid class %d", int(cl)))
	}
	return c
}

// Injector is the per-run fault source. One injector serves one network:
// the network consults it at each fault opportunity and applies the
// protocol consequences itself (the injector knows nothing of packets or
// credits — it only answers "does this opportunity fail?").
//
// Not safe for concurrent use; like every simulator substrate it belongs
// to a single network goroutine.
type Injector struct {
	cfg   Config
	nodes int

	// Per-element RNG streams and burst countdowns, one per channel for
	// the in-flight classes and one per node for stalls.
	tokenRNG, pulseRNG, dataRNG       []*sim.RNG
	tokenBurst, pulseBurst, dataBurst []int

	stallRNG  []*sim.RNG
	stallLeft []int

	counts [NumClasses]int64
}

// NewInjector builds an injector for a network of the given node count
// (node count == channel count on the MWSR ring). The config must have
// been validated; NewInjector panics on out-of-range rates rather than
// silently misbehaving.
func NewInjector(cfg Config, nodes int) *Injector {
	if err := cfg.Validate(); err != nil {
		panic("fault: NewInjector on invalid config: " + err.Error())
	}
	if nodes < 1 {
		panic(fmt.Sprintf("fault: NewInjector needs at least 1 node, got %d", nodes))
	}
	in := &Injector{
		cfg:        cfg,
		nodes:      nodes,
		tokenRNG:   make([]*sim.RNG, nodes),
		pulseRNG:   make([]*sim.RNG, nodes),
		dataRNG:    make([]*sim.RNG, nodes),
		tokenBurst: make([]int, nodes),
		pulseBurst: make([]int, nodes),
		dataBurst:  make([]int, nodes),
		stallRNG:   make([]*sim.RNG, nodes),
		stallLeft:  make([]int, nodes),
	}
	for i := 0; i < nodes; i++ {
		in.tokenRNG[i] = sim.NewRNG(sim.DeriveSeed(cfg.Seed, streamID(TokenLoss, i)))
		in.pulseRNG[i] = sim.NewRNG(sim.DeriveSeed(cfg.Seed, streamID(PulseLoss, i)))
		in.dataRNG[i] = sim.NewRNG(sim.DeriveSeed(cfg.Seed, streamID(DataLoss, i)))
		in.stallRNG[i] = sim.NewRNG(sim.DeriveSeed(cfg.Seed, streamID(NodeStall, i)))
	}
	return in
}

// streamID spreads (class, element) pairs into distinct DeriveSeed streams.
func streamID(cl Class, element int) uint64 {
	return uint64(cl)<<32 | uint64(uint32(element))
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// Counts reports how many faults of each class have fired.
func (in *Injector) Counts() [NumClasses]int64 { return in.counts }

// Total reports the total number of faults fired across all classes.
func (in *Injector) Total() int64 {
	var t int64
	for _, c := range in.counts {
		t += c
	}
	return t
}

// fire is the shared per-opportunity decision: honour the warm-up guard,
// drain an active burst, otherwise draw. A zero rate draws nothing, so
// configured-but-silent classes leave their streams untouched.
func (in *Injector) fire(cl Class, r *sim.RNG, burst *int, cc ClassConfig, now int64) bool {
	if now < in.cfg.Warmup {
		return false
	}
	if *burst > 0 {
		*burst--
		in.counts[cl]++
		return true
	}
	if cc.Rate <= 0 {
		return false
	}
	if !r.Bernoulli(cc.Rate) {
		return false
	}
	if cc.Burst > 1 {
		*burst = cc.Burst - 1
	}
	in.counts[cl]++
	return true
}

// KillToken reports whether this cycle's token opportunity on channel ch
// fails (a circulating global token dies, or the slot token being emitted
// never leaves home alive).
func (in *Injector) KillToken(ch int, now int64) bool {
	return in.fire(TokenLoss, in.tokenRNG[ch], &in.tokenBurst[ch], in.cfg.Token, now)
}

// KillPulse reports whether a handshake pulse being delivered on channel
// ch's handshake waveguide dies instead.
func (in *Injector) KillPulse(ch int, now int64) bool {
	return in.fire(PulseLoss, in.pulseRNG[ch], &in.pulseBurst[ch], in.cfg.Pulse, now)
}

// KillData reports whether the data flit arriving at channel ch's home
// this cycle is corrupted and must be discarded unread.
func (in *Injector) KillData(ch int, now int64) bool {
	return in.fire(DataLoss, in.dataRNG[ch], &in.dataBurst[ch], in.cfg.Data, now)
}

// BeginCycle advances the per-node stall state for cycle now: active
// drifts tick down, idle nodes may start a new drift of Burst cycles.
// onStall (may be nil) is invoked once per drift onset — not per stalled
// cycle — so the network can record the fault event. Call exactly once
// per cycle before consulting Stalled.
func (in *Injector) BeginCycle(now int64, onStall func(node int)) {
	if in.cfg.Stall.Rate <= 0 {
		return
	}
	for n := range in.stallLeft {
		if in.stallLeft[n] > 0 {
			in.stallLeft[n]--
			continue
		}
		if now >= in.cfg.Warmup && in.stallRNG[n].Bernoulli(in.cfg.Stall.Rate) {
			burst := in.cfg.Stall.Burst
			if burst < 1 {
				burst = 1
			}
			in.stallLeft[n] = burst
			in.counts[NodeStall]++
			if onStall != nil {
				onStall(n)
			}
		}
	}
}

// Stalled reports whether node is currently drifted off-channel.
func (in *Injector) Stalled(node int) bool { return in.stallLeft[node] > 0 }
