package fault

import "testing"

// FuzzFaultConfig drives Validate with adversarial per-class rates, bursts
// and warmups, then proves the fail-fast contract: any config Validate
// accepts must construct an injector and survive a kill/stall loop without
// panicking, and any config it rejects must never reach NewInjector (the
// constructor panics on invalid configs, so a Validate false-negative
// surfaces as a fuzz crash).
func FuzzFaultConfig(f *testing.F) {
	// Seed corpus: defaults, the chaos battery's grid edges, and
	// known-nasty values (NaN via 0/0, boundary rates, cap overshoot).
	f.Add(int64(0), uint64(0), 0.0, 0, 0.0, 0, 0.0, 0, 0.0, 0)
	f.Add(int64(300), uint64(1), 0.001, 2, 0.01, 2, 0.05, 2, 0.05, 4)
	f.Add(int64(0), uint64(7), 1.0, 1, 1.0, 1, 1.0, 1, 1.0, 1)
	f.Add(int64(-1), uint64(0), 0.5, 0, 0.5, 0, 0.5, 0, 0.5, 0)
	f.Add(int64(10), uint64(3), -0.5, -1, 1.5, MaxBurst+1, 0.0, 0, 0.0, 0)
	nan := 0.0
	nan /= nan
	f.Add(int64(5), uint64(2), nan, 2, 0.1, 2, nan, 2, 0.1, 2)

	f.Fuzz(func(t *testing.T, warmup int64, seed uint64,
		tokenRate float64, tokenBurst int,
		pulseRate float64, pulseBurst int,
		dataRate float64, dataBurst int,
		stallRate float64, stallBurst int) {
		cfg := Config{
			Enabled: true,
			Warmup:  warmup,
			Seed:    seed,
			Token:   ClassConfig{Rate: tokenRate, Burst: tokenBurst},
			Pulse:   ClassConfig{Rate: pulseRate, Burst: pulseBurst},
			Data:    ClassConfig{Rate: dataRate, Burst: dataBurst},
			Stall:   ClassConfig{Rate: stallRate, Burst: stallBurst},
		}
		if err := cfg.Validate(); err != nil {
			return // rejected up front — the fail-fast contract is met
		}
		// Validate's burst cap is structural, not an allocation bound, so
		// anything it accepts is cheap to construct and run.
		in := NewInjector(cfg, 4)
		fired := int64(0)
		for now := int64(0); now < 256; now++ {
			in.BeginCycle(now, func(node int) {
				if node < 0 || node >= 4 {
					t.Fatalf("onStall node %d out of range", node)
				}
			})
			for ch := 0; ch < 4; ch++ {
				if in.KillToken(ch, now) {
					fired++
				}
				if in.KillPulse(ch, now) {
					fired++
				}
				if in.KillData(ch, now) {
					fired++
				}
				in.Stalled(ch)
			}
		}
		if total := in.Total() - in.Counts()[NodeStall]; total != fired {
			t.Fatalf("kill loop observed %d fires but counters say %d", fired, total)
		}
	})
}
